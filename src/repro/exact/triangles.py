"""Exact triangle counting.

Degree-ordered intersection counting: orient every edge from the
≺-smaller endpoint (degree, then id — the same order as
Definition 12) and count, for every edge (u, v), the common forward
neighbors.  Runs in O(m^{3/2}) time, the classic bound.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.graph import Edge, Graph


def _forward_adjacency(graph: Graph) -> List[Set[int]]:
    """Forward neighbor sets under the (degree, id) total order."""
    def key(v: int) -> Tuple[int, int]:
        return (graph.degree(v), v)

    forward: List[Set[int]] = [set() for _ in range(graph.n)]
    for u, v in graph.edges():
        if key(u) < key(v):
            forward[u].add(v)
        else:
            forward[v].add(u)
    return forward


def count_triangles(graph: Graph) -> int:
    """The number of triangles in *graph*."""
    forward = _forward_adjacency(graph)
    total = 0
    for u in graph.vertices():
        fu = forward[u]
        for v in fu:
            # Intersect the smaller set against the larger.
            fv = forward[v]
            if len(fu) <= len(fv):
                total += sum(1 for w in fu if w in fv)
            else:
                total += sum(1 for w in fv if w in fu)
    return total


def triangles_per_edge(graph: Graph) -> Dict[Edge, int]:
    """Triangle count supported on each edge.

    Used by experiments that need the maximum number of triangles
    sharing an edge (a parameter in several related-work bounds).
    """
    counts: Dict[Edge, int] = {edge: 0 for edge in graph.edges()}
    forward = _forward_adjacency(graph)
    # Each triangle is discovered exactly once (at its order-minimum
    # vertex u) and credited to all three of its edges.
    for u in graph.vertices():
        fu = forward[u]
        for v in fu:
            common = fu & forward[v]
            for w in common:
                for a, b in ((u, v), (u, w), (v, w)):
                    edge = (a, b) if a < b else (b, a)
                    counts[edge] += 1
    return counts


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3 * #triangles / #wedges.

    The network-science statistic the paper's introduction motivates;
    used by the social-network example.
    """
    wedges = sum(d * (d - 1) // 2 for d in graph.degrees())
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges
