"""The trivial baseline: store the whole stream, count exactly.

One pass, O(m) words — the point every sublinear-space algorithm is
measured against.  Works for any pattern and for turnstile streams.
"""

from __future__ import annotations

from repro.estimate.result import EstimateResult
from repro.exact.subgraphs import count_subgraphs
from repro.patterns.pattern import Pattern
from repro.streams.stream import EdgeStream


def exact_stream_count(stream: EdgeStream, pattern: Pattern) -> EstimateResult:
    """Materialize the final graph in one pass and count #H exactly."""
    stream.reset_pass_count()
    present = set()
    for update in stream.updates():
        edge = update.edge
        if update.delta > 0:
            present.add(edge)
        else:
            present.discard(edge)
    graph_edges = sorted(present)

    from repro.graph.graph import Graph

    graph = Graph(stream.n, graph_edges)
    exact = count_subgraphs(graph, pattern)
    return EstimateResult(
        algorithm="exact-store-all",
        pattern=pattern.name,
        estimate=float(exact),
        passes=stream.passes_used,
        space_words=len(graph_edges),
        trials=1,
        successes=1,
        m=len(graph_edges),
    )
