"""The trivial baseline: store the whole stream, count exactly.

One pass, O(m) words — the point every sublinear-space algorithm is
measured against.  Works for any pattern and for turnstile streams.

:class:`ExactStreamEstimator` is the pass-driven core (engine-
compatible); :func:`exact_stream_count` is the one-shot wrapper.  Its
state is a plain edge set and pickles, so it runs on the process
backend via ``EstimatorSpec(...,
factory=repro.engine.parallel.build_exact_stream)``.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

from repro.estimate.result import EstimateResult
from repro.exact.subgraphs import count_subgraphs
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.streams.stream import EdgeStream, pass_batches
from repro.utils.checkpoint import check_state_config, state_field


class ExactStreamEstimator:
    """Pass-driven store-everything exact counter (1 pass, any stream)."""

    def __init__(self, n: int, pattern: Pattern, name: str = "exact") -> None:
        self.name = name
        self._n = n
        self._pattern = pattern
        self._present: Set[Tuple[int, int]] = set()
        self._passes = 0
        self._done = False

    def wants_pass(self) -> bool:
        return not self._done

    @property
    def passes_consumed(self) -> int:
        """Stream passes already driven (engine freshness check)."""
        return self._passes

    def begin_pass(self, pass_index: int) -> None:
        self._passes += 1

    def state_dict(self) -> dict:
        """Full estimator state (present edge set, counters)."""
        return {
            "kind": "exact-stream",
            "n": self._n,
            "present": sorted(self._present),
            "passes": self._passes,
            "done": self._done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into an identically configured estimator."""
        check_state_config("ExactStreamEstimator", state, n=self._n)
        self._present = {
            tuple(edge) for edge in state_field("ExactStreamEstimator", state, "present")
        }
        self._passes = int(state_field("ExactStreamEstimator", state, "passes"))
        self._done = bool(state_field("ExactStreamEstimator", state, "done"))

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        present = self._present
        for _, _, delta, edge in updates:
            if delta > 0:
                present.add(edge)
            else:
                present.discard(edge)

    def end_pass(self) -> None:
        self._done = True

    def result(self) -> EstimateResult:
        graph_edges = sorted(self._present)
        graph = Graph(self._n, graph_edges)
        exact = count_subgraphs(graph, self._pattern)
        return EstimateResult(
            algorithm="exact-store-all",
            pattern=self._pattern.name,
            estimate=float(exact),
            passes=self._passes,
            space_words=len(graph_edges),
            trials=1,
            successes=1,
            m=len(graph_edges),
        )


def exact_stream_count(stream: EdgeStream, pattern: Pattern) -> EstimateResult:
    """Materialize the final graph in one pass and count #H exactly."""
    stream.reset_pass_count()
    estimator = ExactStreamEstimator(stream.n, pattern)
    estimator.begin_pass(0)
    for chunk in pass_batches(stream, columnar=False):
        estimator.ingest_batch(chunk)
    estimator.end_pass()
    return estimator.result()
