"""TRIEST-style reservoir triangle counting (1-pass, insertion-only).

Keep a uniform edge reservoir of fixed capacity M.  When edge (u, v)
arrives, every common neighbor w of u and v *inside the reservoir*
witnesses a triangle {u, v, w}; that triangle was detected iff both
its earlier edges survived in the reservoir, which at arrival time τ
happens with probability (M/(τ-1))·((M-1)/(τ-2)) (without-replacement
uniformity of the reservoir).  Weighting each detection by the inverse
probability gives an unbiased running estimate — the "TRIEST-IMPR"
idea of De Stefani et al. (KDD 2016), included here as the standard
practical 1-pass baseline the paper's related work competes with.

:class:`TriestEstimator` is the pass-driven core (engine-compatible:
``wants_pass`` / ``begin_pass`` / ``ingest_batch`` / ``end_pass`` /
``result``); :func:`triest_count` is the historical one-shot wrapper
that drives it over a single stream pass.  The estimator's state is
plain data (reservoir, adjacency sets, ``random.Random``) and pickles,
so it runs on the process backend via
``EstimatorSpec(..., factory=repro.engine.parallel.build_triest)``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.sketch.reservoir import ReservoirSampler
from repro.streams.stream import EdgeStream, pass_batches
from repro.utils.checkpoint import check_state_config, state_field
from repro.utils.rng import RandomSource, ensure_rng


class TriestEstimator:
    """Pass-driven TRIEST-IMPR triangle estimator (1 pass).

    Registerable with :class:`repro.engine.StreamEngine`; consumes one
    stream pass of decoded ``(u, v, delta, edge)`` updates.  Random
    draws happen in stream order exactly as the historical loop, so a
    fused run is bit-identical to :func:`triest_count` for the same
    seed.
    """

    def __init__(
        self, capacity: int, rng: RandomSource = None, name: str = "triest"
    ) -> None:
        if capacity < 2:
            raise EstimationError(f"reservoir capacity must be >= 2, got {capacity}")
        self.name = name
        self._capacity = capacity
        self._reservoir: ReservoirSampler = ReservoirSampler(capacity, ensure_rng(rng))
        self._adjacency: Dict[int, Set[int]] = {}
        self._estimate = 0.0
        self._arrivals = 0
        self._passes = 0
        self._done = False

    def wants_pass(self) -> bool:
        return not self._done

    @property
    def passes_consumed(self) -> int:
        """Stream passes already driven (engine freshness check)."""
        return self._passes

    def begin_pass(self, pass_index: int) -> None:
        self._passes += 1

    def state_dict(self) -> dict:
        """Full estimator state (reservoir, adjacency, running estimate)."""
        return {
            "kind": "triest",
            "capacity": self._capacity,
            "reservoir": self._reservoir.state_dict(),
            "adjacency": {
                vertex: sorted(neighbors)
                for vertex, neighbors in self._adjacency.items()
            },
            "estimate": self._estimate,
            "arrivals": self._arrivals,
            "passes": self._passes,
            "done": self._done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into an estimator of the same capacity."""
        check_state_config("TriestEstimator", state, capacity=self._capacity)
        self._reservoir.load_state_dict(state_field("TriestEstimator", state, "reservoir"))
        self._adjacency = {
            vertex: set(neighbors)
            for vertex, neighbors in state_field(
                "TriestEstimator", state, "adjacency"
            ).items()
        }
        self._estimate = float(state_field("TriestEstimator", state, "estimate"))
        self._arrivals = int(state_field("TriestEstimator", state, "arrivals"))
        self._passes = int(state_field("TriestEstimator", state, "passes"))
        self._done = bool(state_field("TriestEstimator", state, "done"))

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        reservoir = self._reservoir
        adjacency = self._adjacency
        capacity = self._capacity
        estimate = self._estimate
        arrivals = self._arrivals
        empty: Set[int] = set()

        for u, v, delta, edge in updates:
            if delta < 0:
                raise EstimationError(
                    "this TRIEST variant is insertion-only; use the turnstile "
                    "counter for streams with deletions"
                )
            arrivals += 1
            # Count triangles closed by this arrival using reservoir edges.
            common = adjacency.get(u, empty) & adjacency.get(v, empty)
            if common:
                tau = arrivals
                if tau <= capacity + 1 or reservoir.contains_all_offered():
                    weight = 1.0
                else:
                    keep_two = (capacity / (tau - 1)) * ((capacity - 1) / (tau - 2))
                    weight = 1.0 / keep_two
                estimate += weight * len(common)
            had_room = len(reservoir.items) < capacity
            evicted = reservoir.offer(edge)
            if had_room or evicted is not None:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            if evicted is not None:
                a, b = evicted
                adjacency.get(a, empty).discard(b)
                adjacency.get(b, empty).discard(a)

        self._estimate = estimate
        self._arrivals = arrivals

    def end_pass(self) -> None:
        self._done = True

    def result(self) -> EstimateResult:
        return EstimateResult(
            algorithm="triest",
            pattern="triangle",
            estimate=self._estimate,
            passes=self._passes,
            space_words=2 * self._capacity,
            trials=1,
            successes=1,
            m=self._arrivals,
            details={"capacity": float(self._capacity)},
        )


def triest_count(
    stream: EdgeStream, capacity: int, rng: RandomSource = None
) -> EstimateResult:
    """Estimate the triangle count with a capacity-*capacity* reservoir."""
    if stream.allows_deletions:
        raise EstimationError(
            "this TRIEST variant is insertion-only; use the turnstile counter "
            "for streams with deletions"
        )
    stream.reset_pass_count()
    estimator = TriestEstimator(capacity, rng)
    estimator.begin_pass(0)
    for chunk in pass_batches(stream, columnar=False):
        estimator.ingest_batch(chunk)
    estimator.end_pass()
    result = estimator.result()
    result.m = stream.net_edge_count
    return result
