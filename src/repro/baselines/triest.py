"""TRIEST-style reservoir triangle counting (1-pass, insertion-only).

Keep a uniform edge reservoir of fixed capacity M.  When edge (u, v)
arrives, every common neighbor w of u and v *inside the reservoir*
witnesses a triangle {u, v, w}; that triangle was detected iff both
its earlier edges survived in the reservoir, which at arrival time τ
happens with probability (M/(τ-1))·((M-1)/(τ-2)) (without-replacement
uniformity of the reservoir).  Weighting each detection by the inverse
probability gives an unbiased running estimate — the "TRIEST-IMPR"
idea of De Stefani et al. (KDD 2016), included here as the standard
practical 1-pass baseline the paper's related work competes with.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.sketch.reservoir import ReservoirSampler
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, ensure_rng


def triest_count(
    stream: EdgeStream, capacity: int, rng: RandomSource = None
) -> EstimateResult:
    """Estimate the triangle count with a capacity-*capacity* reservoir."""
    if stream.allows_deletions:
        raise EstimationError(
            "this TRIEST variant is insertion-only; use the turnstile counter "
            "for streams with deletions"
        )
    if capacity < 2:
        raise EstimationError(f"reservoir capacity must be >= 2, got {capacity}")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    reservoir: ReservoirSampler = ReservoirSampler(capacity, random_state)
    adjacency: Dict[int, Set[int]] = {}
    estimate = 0.0
    arrivals = 0

    def link(u: int, v: int) -> None:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)

    def unlink(u: int, v: int) -> None:
        adjacency.get(u, set()).discard(v)
        adjacency.get(v, set()).discard(u)

    for update in stream.updates():
        arrivals += 1
        u, v = update.u, update.v
        # Count triangles closed by this arrival using reservoir edges.
        common = adjacency.get(u, set()) & adjacency.get(v, set())
        if common:
            tau = arrivals
            if tau <= capacity + 1 or reservoir.contains_all_offered():
                weight = 1.0
            else:
                keep_two = (capacity / (tau - 1)) * ((capacity - 1) / (tau - 2))
                weight = 1.0 / keep_two
            estimate += weight * len(common)
        had_room = len(reservoir.items) < capacity
        evicted = reservoir.offer(update.edge)
        admitted = had_room or evicted is not None
        if admitted:
            link(u, v)
        if evicted is not None:
            unlink(*evicted)

    return EstimateResult(
        algorithm="triest",
        pattern="triangle",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=2 * capacity,
        trials=1,
        successes=1,
        m=stream.net_edge_count,
        details={"capacity": float(capacity)},
    )
