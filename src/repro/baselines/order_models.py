"""Triangle counters for the §1.3 stream models.

Two algorithms that exploit structure the arbitrary-order model does
not offer, used by experiment E11 to measure what that structure buys:

* :func:`random_order_triangle_count` — a **1-pass** estimator in the
  random-order model [MVV16-style]: keep a Bernoulli(p) sample of the
  first k stream edges and watch the remaining m−k edges for wedge
  closures.  Under a uniformly random arrival order, a fixed triangle
  contributes a closed sampled wedge with probability exactly

      q = 3 · p² · k(k−1)(m−k) / (m(m−1)(m−2)),

  (3 ways to pick which of its edges closes; the two wedge edges must
  land in the prefix and the closer in the suffix; the two prefix
  edges are each retained with probability p), so X/q is unbiased.
  One pass — impossible at this space in the arbitrary-order model,
  which is the point of §1.3.

* :func:`adjacency_list_triangle_count` — a **2-pass** estimator in
  the adjacency-list model [MVV16/Kal+19-style]: pass 1 reservoir-
  samples uniform *wedges* (a vertex's list arrives contiguously, so
  the t-th neighbor creates t−1 new wedges centered there and a
  per-sampler neighbor reservoir supplies a uniform partner); pass 2
  checks which sampled wedges close.  With W = Σ_v C(d(v), 2) total
  wedges, E[closed fraction] = 3#T/W, so W·fraction/3 is unbiased.

* :func:`adjacency_list_star_count` — **exact** #S_k in one
  adjacency-list pass and O(1) words: contiguous lists reveal d(v) at
  list end, and #S_k = Σ_v C(d(v), k).  No arbitrary-order algorithm
  can do this in sublinear space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.graph.graph import Edge, normalize_edge
from repro.sketch.reservoir import SingleReservoir
from repro.streams.models import AdjacencyListStream
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def random_order_triangle_count(
    stream: EdgeStream,
    prefix_fraction: float = 0.5,
    sample_probability: float = 1.0,
    rng: RandomSource = None,
) -> EstimateResult:
    """One-pass triangle estimate under the random-order promise.

    Parameters
    ----------
    stream:
        Insertion-only stream whose order is a uniformly random
        permutation (e.g. from
        :func:`repro.streams.models.random_order_stream`).  The
        estimator is unbiased *only* under that promise — on an
        adversarial order it can be arbitrarily wrong, which E11
        demonstrates.
    prefix_fraction:
        Fraction of the stream treated as the wedge-collection prefix.
    sample_probability:
        p — Bernoulli retention probability for prefix edges; the
        expected space is p·k + (#sampled wedges) words.
    """
    if not 0.0 < prefix_fraction < 1.0:
        raise EstimationError(f"prefix fraction must be in (0, 1), got {prefix_fraction}")
    if not 0.0 < sample_probability <= 1.0:
        raise EstimationError(
            f"sample probability must be in (0, 1], got {sample_probability}"
        )
    if stream.allows_deletions:
        raise EstimationError("the random-order baseline is insertion-only")
    m = stream.net_edge_count
    if m < 3:
        raise EstimationError("need at least 3 edges to form a triangle")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    k = max(2, int(round(prefix_fraction * m)))
    if k >= m:
        k = m - 1

    kept: Set[Edge] = set()
    incident: Dict[int, List[int]] = {}
    closures: Dict[Edge, int] = {}
    position = 0
    closed = 0
    for update in stream.updates():
        if position < k:
            if random_state.random() < sample_probability:
                u, v = update.edge
                kept.add(update.edge)
                incident.setdefault(u, []).append(v)
                incident.setdefault(v, []).append(u)
        else:
            if position == k:
                # Prefix complete: index the closing edge of every
                # sampled wedge before reading the suffix.
                for center, around in incident.items():
                    for i in range(len(around)):
                        for j in range(i + 1, len(around)):
                            if around[i] != around[j]:
                                pair = normalize_edge(around[i], around[j])
                                closures[pair] = closures.get(pair, 0) + 1
            closed += closures.get(update.edge, 0)
        position += 1

    p = sample_probability
    detection = 3.0 * p * p * (k * (k - 1) * (m - k)) / (m * (m - 1) * (m - 2))
    estimate = closed / detection
    return EstimateResult(
        algorithm="random-order-1pass",
        pattern="triangle",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=2 * len(kept) + len(closures),
        trials=sum(closures.values()),
        successes=closed,
        m=m,
        details={
            "prefix_edges": float(k),
            "kept_edges": float(len(kept)),
            "sampled_wedges": float(sum(closures.values())),
            "detection_probability": detection,
        },
    )


@dataclass
class _WedgeSampler:
    """One uniform-wedge reservoir over an adjacency-list pass."""

    rng: object
    wedges_seen: int = 0
    current_owner: Optional[int] = None
    partner_reservoir: Optional[SingleReservoir] = None
    wedge: Optional[Tuple[int, int, int]] = None  # (u, center, w)

    def observe(self, owner: int, neighbor: int) -> None:
        if owner != self.current_owner:
            self.current_owner = owner
            self.partner_reservoir = SingleReservoir(derive_rng(self.rng, f"p{owner}"))
        else:
            # The new neighbor pairs with each previously seen one:
            # t-1 new wedges, each equally likely to become the sample.
            prior = self.partner_reservoir.count
            if prior >= 1:
                self.wedges_seen += prior
                if self.rng.random() < prior / self.wedges_seen:
                    partner = self.partner_reservoir.item
                    self.wedge = (partner, owner, neighbor)
        self.partner_reservoir.offer(neighbor)


def adjacency_list_triangle_count(
    stream: AdjacencyListStream,
    wedge_samples: int,
    rng: RandomSource = None,
) -> EstimateResult:
    """Two-pass triangle estimate in the adjacency-list model.

    Pass 1 runs *wedge_samples* independent uniform-wedge reservoirs
    (contiguous lists make per-center wedge enumeration streamable);
    pass 2 checks closures.  The estimate is W · closed/(3·samples)
    with W the exact wedge count, also accumulated in pass 1.
    """
    if wedge_samples < 1:
        raise EstimationError(f"wedge samples must be >= 1, got {wedge_samples}")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    samplers = [
        _WedgeSampler(rng=derive_rng(random_state, f"wedge-{i}"))
        for i in range(wedge_samples)
    ]
    total_wedges = 0
    list_progress: Dict[int, int] = {}
    for item in stream.items():
        seen = list_progress.get(item.owner, 0)
        total_wedges += seen  # the (seen+1)-th neighbor adds `seen` wedges
        list_progress[item.owner] = seen + 1
        for sampler in samplers:
            sampler.observe(item.owner, item.neighbor)

    if total_wedges == 0:
        return EstimateResult(
            algorithm="adjacency-list-2pass",
            pattern="triangle",
            estimate=0.0,
            passes=stream.passes_used,
            space_words=3 * wedge_samples,
            trials=wedge_samples,
            m=stream.m,
        )

    needed: Dict[Edge, bool] = {}
    for sampler in samplers:
        if sampler.wedge is not None:
            u, _, w = sampler.wedge
            needed.setdefault(normalize_edge(u, w), False)
    for item in stream.items():
        pair = normalize_edge(item.owner, item.neighbor)
        if pair in needed:
            needed[pair] = True

    closed = sum(
        1
        for sampler in samplers
        if sampler.wedge is not None
        and needed[normalize_edge(sampler.wedge[0], sampler.wedge[2])]
    )
    estimate = total_wedges * closed / (3.0 * wedge_samples)
    return EstimateResult(
        algorithm="adjacency-list-2pass",
        pattern="triangle",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=3 * wedge_samples + len(needed),
        trials=wedge_samples,
        successes=closed,
        m=stream.m,
        details={
            "total_wedges": float(total_wedges),
            "closed_samples": float(closed),
        },
    )


def adjacency_list_star_count(
    stream: AdjacencyListStream, petals: int
) -> EstimateResult:
    """**Exact** #S_k in one adjacency-list pass and O(1) words.

    Because each vertex's list is contiguous, d(v) is known the moment
    the list ends, and #S_k = Σ_v C(d(v), k) accumulates on the fly —
    no estimate, no randomness.  (For k = 1 both endpoints qualify as
    the "center" of a single edge, so the sum is halved.)  This is the
    starkest illustration of what the adjacency-list grouping buys: in
    the arbitrary-order model the same count needs Ω(n) space to hold
    the degree vector (every edge can touch every counter until the
    stream ends).
    """
    if petals < 1:
        raise EstimationError(f"stars need >= 1 petal, got {petals}")
    stream.reset_pass_count()

    total = 0
    current_owner: Optional[int] = None
    current_degree = 0

    def close_list() -> int:
        return math.comb(current_degree, petals)

    for item in stream.items():
        if item.owner != current_owner:
            if current_owner is not None:
                total += close_list()
            current_owner = item.owner
            current_degree = 0
        current_degree += 1
    if current_owner is not None:
        total += close_list()
    if petals == 1:
        total //= 2

    return EstimateResult(
        algorithm="adjacency-list-exact-stars",
        pattern=f"S{petals}",
        estimate=float(total),
        passes=stream.passes_used,
        space_words=3,
        trials=1,
        successes=1 if total else 0,
        m=stream.m,
    )
