"""MVV-style 2-pass triangle counting [MVV16].

The two-pass algorithm of McGregor, Vorotnikova and Vu with space
~O(m/(ε²·√#T)): in the first pass every edge is kept independently
with probability p; in the second pass the algorithm watches for the
closing edge of every *wedge* (path of length 2) formed by two kept
edges.  A triangle contains three wedges and each wedge survives the
first pass with probability exactly p², so

    E[#closed sampled wedges] = 3 p² #T,

and X/(3p²) is an unbiased estimate of #T.  Choosing p ≈ 1/√#T keeps
the expected sample ~m/√#T edges — the space bound quoted in the
paper's related-work table (§1, "Triangles", two passes).

This is a genuinely different trade-off from the 3-/4-pass
edge-extension algorithm in :mod:`repro.baselines.mvv`: fewer passes,
more space, and the second-pass state additionally carries one flag
per sampled wedge.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.graph.graph import Edge, normalize_edge
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, ensure_rng


def _sampled_wedges(edges: Set[Edge]) -> List[Tuple[Edge, Edge, Edge]]:
    """All unordered wedges among *edges*, with their closing edge.

    Returns triples ``(e, f, closing)`` where e and f share exactly
    one endpoint and ``closing`` joins the two free endpoints.
    """
    incident: Dict[int, List[Edge]] = {}
    for edge in edges:
        incident.setdefault(edge[0], []).append(edge)
        incident.setdefault(edge[1], []).append(edge)
    wedges: List[Tuple[Edge, Edge, Edge]] = []
    for center, around in incident.items():
        for i in range(len(around)):
            for j in range(i + 1, len(around)):
                e, f = around[i], around[j]
                a = e[0] if e[1] == center else e[1]
                b = f[0] if f[1] == center else f[1]
                if a == b:
                    continue  # e and f share both endpoints (impossible for a set)
                wedges.append((e, f, normalize_edge(a, b)))
    return wedges


def mvv_two_pass_triangle_count(
    stream: EdgeStream,
    sample_probability: float,
    rng: RandomSource = None,
) -> EstimateResult:
    """Estimate #T in two passes by closing sampled wedges.

    Parameters
    ----------
    stream:
        Insertion-only edge stream.
    sample_probability:
        p — per-edge first-pass retention probability.  The MVV space
        bound corresponds to p ≈ 1/√#T; any p in (0, 1] is accepted.
    """
    if not 0.0 < sample_probability <= 1.0:
        raise EstimationError(
            f"sample probability must be in (0, 1], got {sample_probability}"
        )
    if stream.allows_deletions:
        raise EstimationError("the 2-pass MVV baseline is insertion-only")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    # Pass 1: Bernoulli(p) edge sample.
    kept: Set[Edge] = set()
    m = 0
    for update in stream.updates():
        m += 1
        if random_state.random() < sample_probability:
            kept.add(update.edge)

    wedges = _sampled_wedges(kept)
    needed: Dict[Edge, bool] = {closing: False for _, _, closing in wedges}

    # Pass 2: mark closing edges that appear anywhere in the stream.
    for update in stream.updates():
        if update.edge in needed:
            needed[update.edge] = True

    closed = sum(1 for _, _, closing in wedges if needed[closing])
    p = sample_probability
    estimate = closed / (3.0 * p * p)
    return EstimateResult(
        algorithm="mvv-2pass",
        pattern="triangle",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=2 * len(kept) + len(needed),
        trials=len(wedges),
        successes=closed,
        m=m,
        details={
            "sampled_edges": float(len(kept)),
            "sampled_wedges": float(len(wedges)),
            "closed_wedges": float(closed),
            "sample_probability": p,
        },
    )
