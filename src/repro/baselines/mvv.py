"""MVV-style multi-pass triangle counting [MVV16].

The ~O(m^{3/2}/(ε² #T))-space algorithm of McGregor, Vorotnikova and
Vu: sample edges uniformly, extend each by a random neighbor of its
lower-degree endpoint, check closure, and rescale by the inverse
detection probability.

Pass structure matches the related-work table in §1:

* with a *degree oracle* (their stated assumption): 3 passes —
  sample edges; sample the extension neighbor; check closure;
* without one: 4 passes (an extra pass counts the sampled endpoints'
  degrees), which is the Bera–Chakrabarti regime.

Per trial, a specific triangle on the sampled edge is detected with
probability 1/deg_min(e), so X = m · deg_min · [detected] has
E[X] = Σ_e #tri(e) = 3·#T.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.sketch.reservoir import SingleReservoir
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def mvv_triangle_count(
    stream: EdgeStream,
    trials: int,
    rng: RandomSource = None,
    degree_oracle: Optional[Callable[[int], int]] = None,
) -> EstimateResult:
    """Estimate #T with *trials* parallel edge-extension samples."""
    if trials < 1:
        raise EstimationError(f"trials must be >= 1, got {trials}")
    if stream.allows_deletions:
        raise EstimationError("the MVV baseline is insertion-only")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    # Pass 1: edge reservoirs + m.
    reservoirs = [
        SingleReservoir(derive_rng(random_state, f"edge-{i}")) for i in range(trials)
    ]
    m = 0
    for update in stream.updates():
        m += 1
        for reservoir in reservoirs:
            reservoir.offer(update.edge)
    if m == 0:
        return EstimateResult(
            algorithm="mvv", pattern="triangle", estimate=0.0,
            passes=stream.passes_used, space_words=0, trials=trials, m=0,
        )
    sampled: List[Optional[Tuple[int, int]]] = [r.item for r in reservoirs]

    # Degrees of sampled endpoints: oracle (3-pass mode) or extra pass.
    endpoints = sorted({v for edge in sampled if edge for v in edge})
    degrees: Dict[int, int] = {}
    if degree_oracle is not None:
        degrees = {v: degree_oracle(v) for v in endpoints}
    else:
        counters = {v: 0 for v in endpoints}
        for update in stream.updates():
            if update.u in counters:
                counters[update.u] += 1
            if update.v in counters:
                counters[update.v] += 1
        degrees = counters

    # Choose the pivot (lower-degree endpoint) and a target arrival index.
    pivots: List[Optional[Tuple[int, int, int]]] = []  # (pivot, other, index)
    for i, edge in enumerate(sampled):
        if edge is None:
            pivots.append(None)
            continue
        u, v = edge
        pivot = u if (degrees[u], u) <= (degrees[v], v) else v
        other = v if pivot == u else u
        if degrees[pivot] == 0:
            pivots.append(None)
            continue
        child = derive_rng(random_state, f"index-{i}")
        pivots.append((pivot, other, child.randrange(degrees[pivot])))

    # Next pass: capture each pivot's index-th arrival neighbor.
    arrival_count: Dict[int, int] = {}
    captured: List[Optional[int]] = [None] * trials
    watch: Dict[int, List[Tuple[int, int]]] = {}
    for i, entry in enumerate(pivots):
        if entry is not None:
            pivot, _, index = entry
            watch.setdefault(pivot, []).append((index, i))
            arrival_count[pivot] = 0
    for update in stream.updates():
        for endpoint, other in ((update.u, update.v), (update.v, update.u)):
            if endpoint in watch:
                seen = arrival_count[endpoint]
                for index, slot in watch[endpoint]:
                    if index == seen:
                        captured[slot] = other
                arrival_count[endpoint] = seen + 1

    # Final pass: closure checks.
    needed: Dict[Tuple[int, int], bool] = {}
    for i, entry in enumerate(pivots):
        if entry is None or captured[i] is None:
            continue
        _, other, _ = entry
        w = captured[i]
        if w != other:
            pair = (other, w) if other < w else (w, other)
            needed[pair] = False
    for update in stream.updates():
        if update.edge in needed:
            needed[update.edge] = True

    total = 0.0
    detections = 0
    for i, entry in enumerate(pivots):
        if entry is None or captured[i] is None:
            continue
        pivot, other, _ = entry
        w = captured[i]
        if w == other:
            continue
        pair = (other, w) if other < w else (w, other)
        if needed.get(pair, False):
            total += m * degrees[pivot]
            detections += 1

    estimate = total / (3.0 * trials)
    return EstimateResult(
        algorithm="mvv" + ("-oracle" if degree_oracle else ""),
        pattern="triangle",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=6 * trials,
        trials=trials,
        successes=detections,
        m=m,
        details={"detections": float(detections)},
    )
