"""Baseline streaming counters from the related work (§1).

These give the experiment suite comparison points on the space/pass/
accuracy landscape the paper positions itself in:

* exact store-everything (1 pass, O(m) space);
* TRIEST-style reservoir triangle estimation (1 pass, fixed memory);
* Doulion edge sparsification (1 pass, p·m expected space);
* MVV-style heavy/light multi-pass triangle counting (3/4 passes) and
  the 2-pass wedge-closure variant;
* the Kane–Mehlhorn / Manjunath-style complex-valued homomorphism
  sketch (1 pass, turnstile) for cycle counting;
* §1.3 model-specific counters: 1-pass random-order and 2-pass
  adjacency-list triangle estimation.
"""

from repro.baselines.exact_stream import ExactStreamEstimator, exact_stream_count
from repro.baselines.triest import TriestEstimator, triest_count
from repro.baselines.doulion import DoulionEstimator, doulion_count
from repro.baselines.mvv import mvv_triangle_count
from repro.baselines.mvv_two_pass import mvv_two_pass_triangle_count
from repro.baselines.order_models import (
    adjacency_list_star_count,
    adjacency_list_triangle_count,
    random_order_triangle_count,
)
from repro.baselines.cycle_sketch import (
    HomomorphismSketch,
    sketch_count_triangles,
    sketch_count_four_cycles,
)

__all__ = [
    "ExactStreamEstimator",
    "exact_stream_count",
    "TriestEstimator",
    "triest_count",
    "DoulionEstimator",
    "doulion_count",
    "mvv_triangle_count",
    "mvv_two_pass_triangle_count",
    "adjacency_list_star_count",
    "adjacency_list_triangle_count",
    "random_order_triangle_count",
    "HomomorphismSketch",
    "sketch_count_triangles",
    "sketch_count_four_cycles",
]
