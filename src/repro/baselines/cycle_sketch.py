"""Kane–Mehlhorn–Sauerwald–Sun / Manjunath et al. homomorphism sketch.

The 1-pass turnstile baseline of [Kan+12, Man+11] (§1 item 1): for
each pattern vertex a, draw a k-wise independent random function
X_a: V(G) → {d_a-th roots of unity} (d_a = deg_H(a)); for each pattern
edge i = (a, b) maintain

    Z_i = Σ_{updates (u,v,Δ)} Δ · (X_a(u)·X_b(v) + X_a(v)·X_b(u)).

Then E[Re Π_i Z_i] = #hom(H → G): a term survives the expectation iff
every pattern vertex's d_a slots land on a single graph vertex, i.e.
iff the term encodes a homomorphism.  The estimator's variance is what
drives the (m^{|E(H)|}/(#H)²)-type space bounds quoted in §1, which is
exactly the landscape experiment E7 reports.

Converting homomorphisms to subgraph counts needs degenerate-walk
corrections; exact ones are provided for triangles
(hom = 6·#T) and 4-cycles (hom = 8·#C4 + 2Σ_v d_v² − 2m).
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import EstimationError
from repro.estimate.concentration import median_of_means
from repro.estimate.result import EstimateResult
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern, cycle, triangle
from repro.sketch.hashing import PolynomialHash
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


class HomomorphismSketch:
    """One linear sketch estimating #hom(H -> G) over a turnstile stream."""

    def __init__(self, pattern: Pattern, rng: RandomSource = None) -> None:
        random_state = ensure_rng(rng)
        graph = pattern.graph
        self._pattern = pattern
        self._edges: List[Tuple[int, int]] = list(graph.edges())
        independence = max(4, 2 * len(self._edges) + 2)
        self._hashes: Dict[int, PolynomialHash] = {}
        self._roots: Dict[int, List[complex]] = {}
        for vertex in graph.vertices():
            degree = graph.degree(vertex)
            self._hashes[vertex] = PolynomialHash(
                independence, derive_rng(random_state, f"X-{vertex}")
            )
            self._roots[vertex] = [
                cmath.exp(2j * math.pi * j / degree) for j in range(degree)
            ]
        self._accumulators: List[complex] = [0j] * len(self._edges)

    def _x(self, pattern_vertex: int, graph_vertex: int) -> complex:
        roots = self._roots[pattern_vertex]
        return roots[self._hashes[pattern_vertex].to_range(graph_vertex, len(roots))]

    def update(self, u: int, v: int, delta: int) -> None:
        """Feed one stream update into every edge accumulator."""
        values_u = {a: self._x(a, u) for a in self._hashes}
        values_v = {a: self._x(a, v) for a in self._hashes}
        for index, (a, b) in enumerate(self._edges):
            term = values_u[a] * values_v[b] + values_v[a] * values_u[b]
            self._accumulators[index] += delta * term

    def estimate(self) -> float:
        """Re(Π Z_i): an unbiased estimate of #hom(H -> G)."""
        product = 1 + 0j
        for accumulator in self._accumulators:
            product *= accumulator
        return product.real

    @property
    def space_words(self) -> int:
        hash_words = sum(h.independence for h in self._hashes.values())
        return 2 * len(self._edges) + hash_words


def estimate_homomorphisms(
    stream: EdgeStream,
    pattern: Pattern,
    sketches: int,
    rng: RandomSource = None,
    groups: int = 8,
    track_degrees: bool = False,
):
    """Run *sketches* independent sketches in one pass; aggregate robustly.

    Returns ``(hom_estimate, m, degree_square_sum, total_space)``;
    the degree statistics are gathered in the same pass when
    *track_degrees* (used by the C4 correction).
    """
    if sketches < 1:
        raise EstimationError(f"sketches must be >= 1, got {sketches}")
    random_state = ensure_rng(rng)
    stream.reset_pass_count()
    instances = [
        HomomorphismSketch(pattern, derive_rng(random_state, i)) for i in range(sketches)
    ]
    degree_counter: Dict[int, int] = {}
    m = 0
    for update in stream.updates():
        m += update.delta
        for instance in instances:
            instance.update(update.u, update.v, update.delta)
        if track_degrees:
            degree_counter[update.u] = degree_counter.get(update.u, 0) + update.delta
            degree_counter[update.v] = degree_counter.get(update.v, 0) + update.delta
    estimates = [instance.estimate() for instance in instances]
    hom = median_of_means(estimates, groups)
    degree_square_sum = sum(d * d for d in degree_counter.values())
    space = sum(instance.space_words for instance in instances)
    if track_degrees:
        space += len(degree_counter)
    return hom, m, degree_square_sum, space


def sketch_count_triangles(
    stream: EdgeStream, sketches: int, rng: RandomSource = None
) -> EstimateResult:
    """1-pass turnstile triangle estimate: #T = hom(C3)/6."""
    hom, m, _, space = estimate_homomorphisms(stream, triangle(), sketches, rng)
    return EstimateResult(
        algorithm="hom-sketch",
        pattern="triangle",
        estimate=hom / 6.0,
        passes=stream.passes_used,
        space_words=space,
        trials=sketches,
        successes=1,
        m=m,
        details={"hom": hom},
    )


def sketch_count_four_cycles(
    stream: EdgeStream, sketches: int, rng: RandomSource = None
) -> EstimateResult:
    """1-pass turnstile C4 estimate with the degenerate-walk correction.

    hom(C4) = 8·#C4 + 2·Σ_v d_v² − 2m, so
    #C4 = (hom − 2Σd² + 2m)/8.  The degree statistics are exact
    (O(n) counters in the same pass), isolating the sketch's error in
    the hom term.
    """
    hom, m, degree_square_sum, space = estimate_homomorphisms(
        stream, cycle(4), sketches, rng, track_degrees=True
    )
    estimate = (hom - 2.0 * degree_square_sum + 2.0 * m) / 8.0
    return EstimateResult(
        algorithm="hom-sketch",
        pattern="C4",
        estimate=estimate,
        passes=stream.passes_used,
        space_words=space,
        trials=sketches,
        successes=1,
        m=m,
        details={"hom": hom, "degree_square_sum": float(degree_square_sum)},
    )
