"""Doulion: count triangles on a coin-flip sparsified stream.

Tsourakakis et al. (KDD 2009): keep each edge independently with
probability p, count triangles exactly in the sparsified graph, and
rescale by 1/p^3.  One pass, expected p·m stored edges, unbiased; the
classic accuracy-for-space dial.  Generalized here to any pattern H
(rescale by p^{-|E(H)|}).

:class:`DoulionEstimator` is the pass-driven core (engine-compatible);
:func:`doulion_count` is the historical one-shot wrapper.  Its state
(kept edges, pattern, ``random.Random``) pickles, so it runs on the
process backend via ``EstimatorSpec(...,
factory=repro.engine.parallel.build_doulion)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.exact.subgraphs import count_subgraphs
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern, triangle
from repro.streams.stream import EdgeStream, pass_batches
from repro.utils.checkpoint import (
    check_state_config,
    rng_state,
    set_rng_state,
    state_field,
)
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_fraction


class DoulionEstimator:
    """Pass-driven Doulion sparsify-and-count estimator (1 pass).

    Registerable with :class:`repro.engine.StreamEngine`.  Coin flips
    happen in stream order exactly as the historical loop, so a fused
    run keeps each edge iff :func:`doulion_count` would for the same
    seed.
    """

    def __init__(
        self,
        n: int,
        keep_probability: float,
        pattern: Pattern = None,
        rng: RandomSource = None,
        name: str = "doulion",
    ) -> None:
        check_fraction(keep_probability, "keep_probability")
        self.name = name
        self._n = n
        self._keep_probability = keep_probability
        self._pattern = pattern if pattern is not None else triangle()
        self._rng = ensure_rng(rng)
        self._kept: List[Tuple[int, int]] = []
        self._arrivals = 0
        self._passes = 0
        self._done = False

    def wants_pass(self) -> bool:
        return not self._done

    @property
    def passes_consumed(self) -> int:
        """Stream passes already driven (engine freshness check)."""
        return self._passes

    def begin_pass(self, pass_index: int) -> None:
        self._passes += 1

    def state_dict(self) -> dict:
        """Full estimator state (kept edges, rng position, counters)."""
        return {
            "kind": "doulion",
            "n": self._n,
            "keep_probability": self._keep_probability,
            "rng": rng_state(self._rng),
            "kept": list(self._kept),
            "arrivals": self._arrivals,
            "passes": self._passes,
            "done": self._done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into an identically configured estimator."""
        check_state_config(
            "DoulionEstimator",
            state,
            n=self._n,
            keep_probability=self._keep_probability,
        )
        set_rng_state(self._rng, state_field("DoulionEstimator", state, "rng"))
        self._kept = [tuple(edge) for edge in state_field("DoulionEstimator", state, "kept")]
        self._arrivals = int(state_field("DoulionEstimator", state, "arrivals"))
        self._passes = int(state_field("DoulionEstimator", state, "passes"))
        self._done = bool(state_field("DoulionEstimator", state, "done"))

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        random_unit = self._rng.random
        keep_probability = self._keep_probability
        kept_append = self._kept.append
        for _, _, delta, edge in updates:
            if delta < 0:
                raise EstimationError(
                    "Doulion sparsification assumes an insertion-only stream"
                )
            if random_unit() < keep_probability:
                kept_append(edge)
        self._arrivals += len(updates)

    def end_pass(self) -> None:
        self._done = True

    def result(self) -> EstimateResult:
        pattern = self._pattern
        sparse = Graph(self._n, self._kept)
        raw = count_subgraphs(sparse, pattern)
        keep_probability = self._keep_probability
        scale = keep_probability ** (-pattern.num_edges)
        return EstimateResult(
            algorithm="doulion",
            pattern=pattern.name,
            estimate=raw * scale,
            passes=self._passes,
            space_words=len(self._kept),
            trials=1,
            successes=1,
            m=self._arrivals,
            details={
                "keep_probability": keep_probability,
                "kept_edges": float(len(self._kept)),
            },
        )


def doulion_count(
    stream: EdgeStream,
    keep_probability: float,
    pattern: Pattern = None,
    rng: RandomSource = None,
) -> EstimateResult:
    """Sparsify-and-count estimate of #H (default H = triangle)."""
    check_fraction(keep_probability, "keep_probability")
    if stream.allows_deletions:
        raise EstimationError(
            "Doulion sparsification assumes an insertion-only stream"
        )
    stream.reset_pass_count()
    estimator = DoulionEstimator(stream.n, keep_probability, pattern, rng)
    estimator.begin_pass(0)
    for chunk in pass_batches(stream, columnar=False):
        estimator.ingest_batch(chunk)
    estimator.end_pass()
    result = estimator.result()
    result.m = stream.net_edge_count
    return result
