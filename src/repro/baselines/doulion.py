"""Doulion: count triangles on a coin-flip sparsified stream.

Tsourakakis et al. (KDD 2009): keep each edge independently with
probability p, count triangles exactly in the sparsified graph, and
rescale by 1/p^3.  One pass, expected p·m stored edges, unbiased; the
classic accuracy-for-space dial.  Generalized here to any pattern H
(rescale by p^{-|E(H)|}).
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.exact.subgraphs import count_subgraphs
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern, triangle
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_fraction


def doulion_count(
    stream: EdgeStream,
    keep_probability: float,
    pattern: Pattern = None,
    rng: RandomSource = None,
) -> EstimateResult:
    """Sparsify-and-count estimate of #H (default H = triangle)."""
    check_fraction(keep_probability, "keep_probability")
    if pattern is None:
        pattern = triangle()
    if stream.allows_deletions:
        raise EstimationError(
            "Doulion sparsification assumes an insertion-only stream"
        )
    random_state = ensure_rng(rng)
    stream.reset_pass_count()

    kept = []
    for update in stream.updates():
        if random_state.random() < keep_probability:
            kept.append(update.edge)

    sparse = Graph(stream.n, kept)
    raw = count_subgraphs(sparse, pattern)
    scale = keep_probability ** (-pattern.num_edges)
    return EstimateResult(
        algorithm="doulion",
        pattern=pattern.name,
        estimate=raw * scale,
        passes=stream.passes_used,
        space_words=len(kept),
        trials=1,
        successes=1,
        m=stream.net_edge_count,
        details={"keep_probability": keep_probability, "kept_edges": float(len(kept))},
    )
