"""Theorem 17: the 3-pass insertion-only subgraph counter.

Runs k independent FGP sampler instances *in parallel* over the same
three passes (the driver merges every instance's round-ℓ queries into
pass ℓ), counts how many returned a copy, and rescales:

    #H ≈ (successes / k) * (2m)^ρ(H).

Each instance needs O(|H| log n) bits, so total space is O(k log n) =
~O(m^ρ(H) / (ε² L)) — the theorem's bound, measured here by the
oracle's space meter.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import EstimationError
from repro.estimate.concentration import ParamMode, chernoff_trials
from repro.estimate.result import EstimateResult
from repro.fgp.rounds import SampledCopy, SamplerMode, subgraph_sampler_rounds
from repro.patterns.pattern import Pattern
from repro.streams.stream import EdgeStream
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def resolve_trials(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float,
    lower_bound: Optional[float],
    trials: Optional[int],
    mode: str = ParamMode.PRACTICAL,
) -> int:
    """The instance budget k for a counting run.

    Explicit *trials* wins; otherwise the Chernoff budget for the
    given ε and lower bound L is used (the common convention of
    parameterizing by #H — see §1.1 of the paper; the harness knows m
    because it generated the stream).
    """
    if trials is not None:
        if trials < 1:
            raise EstimationError(f"trials must be >= 1, got {trials}")
        return trials
    if lower_bound is None:
        raise EstimationError("either trials or lower_bound must be given")
    return chernoff_trials(
        m=max(1, stream.net_edge_count),
        rho=pattern.rho(),
        epsilon=epsilon,
        n=stream.n,
        lower_bound=lower_bound,
        mode=mode,
    )


def sample_copies_stream(
    stream: EdgeStream,
    pattern: Pattern,
    instances: int,
    rng: RandomSource = None,
) -> List[Optional[SampledCopy]]:
    """Run *instances* FGP samplers over 3 shared passes; return outputs.

    Output i is the copy instance i sampled, or ``None``.  Useful for
    the uniform-sampling experiments (each fixed copy appears with
    probability 1/(2m)^ρ(H) per instance, independently).
    """
    random_state = ensure_rng(rng)
    oracle = InsertionStreamOracle(stream, derive_rng(random_state, "oracle"))
    generators = [
        subgraph_sampler_rounds(
            pattern, rng=derive_rng(random_state, i), mode=SamplerMode.AUGMENTED
        )
        for i in range(instances)
    ]
    result = run_round_adaptive(generators, oracle)
    return result.outputs


def fgp_success_estimate(
    outputs, trials: int, m: int, rho: float
) -> tuple:
    """(successes, estimate) from a run's sampler outputs."""
    successes = sum(1 for output in outputs if output is not None)
    estimate = (successes / trials) * (2.0 * m) ** rho if m else 0.0
    return successes, estimate


def insertion_counter_program(
    stream: EdgeStream, pattern: Pattern, trials: int, random_state
):
    """Build the Theorem 17 run as an ``(oracle, generators, finalize)`` triple.

    Shared by :func:`count_subgraphs_insertion_only` (which drives it
    with :func:`~repro.transform.driver.run_round_adaptive`) and by
    :mod:`repro.engine` (which fuses the same rounds into shared stream
    passes), so both paths consume randomness identically and produce
    bit-identical estimates for the same seeds.
    """
    oracle = InsertionStreamOracle(stream, derive_rng(random_state, "oracle"))
    generators = [
        subgraph_sampler_rounds(
            pattern, rng=derive_rng(random_state, i), mode=SamplerMode.AUGMENTED
        )
        for i in range(trials)
    ]

    def finalize(run) -> EstimateResult:
        m = stream.net_edge_count
        rho = pattern.rho()
        successes, estimate = fgp_success_estimate(run.outputs, trials, m, rho)
        return EstimateResult(
            algorithm="fgp-3pass-insertion",
            pattern=pattern.name,
            estimate=estimate,
            passes=run.rounds,
            space_words=oracle.space.peak_words,
            trials=trials,
            successes=successes,
            m=m,
            details={
                "rho": rho,
                "queries": float(run.total_queries),
                "success_rate": successes / trials,
            },
        )

    return oracle, generators, finalize


def count_subgraphs_insertion_only(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
) -> EstimateResult:
    """Theorem 17: (1±ε)-approximate #H in 3 insertion-only passes.

    Parameters
    ----------
    stream:
        An insertion-only edge stream (arbitrary order).
    pattern:
        The target subgraph H.
    epsilon, lower_bound, trials, param_mode:
        Trial-budget controls; see :func:`resolve_trials`.
    """
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)

    stream.reset_pass_count()
    oracle, generators, finalize = insertion_counter_program(
        stream, pattern, k, random_state
    )
    return finalize(run_round_adaptive(generators, oracle))
