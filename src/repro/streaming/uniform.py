"""Uniform subgraph sampling from a stream (Algorithm 10, streamed).

Conditioned on success, an FGP attempt returns every copy of H with
the same probability, so the first success among parallel attempts is
a uniform random copy.  This module packages that as a 3-pass
streaming operation: run enough attempts in the same three passes and
return the first success (plus diagnostics).

The attempt budget follows Algorithm 10: ~10 (2m)^ρ(H)/T attempts give
a success with constant probability when T <= #H.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import EstimationError
from repro.fgp.rounds import SampledCopy
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import sample_copies_stream
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource


@dataclass
class UniformSampleResult:
    """Outcome of a uniform-copy sampling run."""

    copy: Optional[SampledCopy]
    attempts: int
    successes: int
    passes: int

    @property
    def succeeded(self) -> bool:
        return self.copy is not None


def default_attempt_budget(m: int, rho: float, copies_lower_bound: float) -> int:
    """Algorithm 10's attempt count: ceil(10 (2m)^ρ / T)."""
    if copies_lower_bound <= 0:
        raise EstimationError("copies_lower_bound must be positive")
    return max(1, math.ceil(10.0 * (2.0 * m) ** rho / copies_lower_bound))


def sample_subgraph_uniformly_stream(
    stream: EdgeStream,
    pattern: Pattern,
    copies_lower_bound: float = 1.0,
    attempts: Optional[int] = None,
    rng: RandomSource = None,
    attempt_cap: int = 500_000,
) -> UniformSampleResult:
    """Sample one uniform copy of *pattern* in three passes.

    With *attempts* unset, the Algorithm 10 budget (from the stream's
    net edge count and *copies_lower_bound*) is used, capped at
    *attempt_cap*.  All attempts share the same three passes.
    """
    if attempts is None:
        attempts = min(
            attempt_cap,
            default_attempt_budget(
                max(1, stream.net_edge_count), pattern.rho(), copies_lower_bound
            ),
        )
    stream.reset_pass_count()
    outputs: List[Optional[SampledCopy]] = sample_copies_stream(
        stream, pattern, instances=attempts, rng=rng
    )
    successes = [output for output in outputs if output is not None]
    return UniformSampleResult(
        copy=successes[0] if successes else None,
        attempts=attempts,
        successes=len(successes),
        passes=stream.passes_used,
    )
