"""The paper's streaming algorithms.

* :func:`count_subgraphs_insertion_only` — Theorem 17: 3-pass
  insertion-only (1±ε)-approximation of #H.
* :func:`count_subgraphs_turnstile` — Theorem 1: 3-pass turnstile
  (1±ε)-approximation of #H.
* :func:`sample_copies_stream` — the Lemma 16/18 subgraph sampler run
  over a stream (many parallel instances, 3 passes total).
* :class:`repro.streaming.ers` — Theorem 2: the 5r-pass ERS clique
  counter for low-degeneracy graphs.
* :func:`count_subgraphs_two_pass` — conclusion open question, star
  subclass: a 2-pass counter for star-decomposable H.
"""

from repro.streaming.three_pass import (
    count_subgraphs_insertion_only,
    sample_copies_stream,
)
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streaming.adaptive import count_subgraphs_unknown
from repro.streaming.two_pass import count_subgraphs_two_pass, is_star_decomposable
from repro.streaming.ers.counter import count_cliques_stream, ErsParameters

__all__ = [
    "count_subgraphs_insertion_only",
    "count_subgraphs_turnstile",
    "sample_copies_stream",
    "count_subgraphs_unknown",
    "count_subgraphs_two_pass",
    "is_star_decomposable",
    "count_cliques_stream",
    "ErsParameters",
]
