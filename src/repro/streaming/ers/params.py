"""Parameters of the ERS clique counter (Algorithms 2 and 3).

The paper's constants are stated for the asymptotic analysis:

* γ = ε/(8r·r!), β = 1/(6r)  (Algorithm 2 — threshold constants),
* τ_t = r^{4r}/(β^r γ²) · λ^{r-t} for t ∈ {2, …, r-1}, τ_r = 1,
* per-level sample sizes s_{t+1} = ⌈dg(R_t)·τ_{t+1}/ω̃_t · 3ln(2/β)/γ²⌉,
* q = Θ(log n) outer repetitions (median), 12·ln(n^{r+10}) activity
  repetitions.

At r = 3 those already exceed 10^9 samples, so the default PRACTICAL
mode keeps every formula's *shape* (the λ^{r-t} scaling, the
dg(R_t)/ω̃_t sample sizing, the τ/4 activity threshold) but with
tunable constants and caps.  THEORY mode reproduces the paper's
values verbatim for anyone who wants to print them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import EstimationError


@dataclass(frozen=True)
class ErsParameters:
    """Configuration of one ERS run.

    Parameters
    ----------
    r:
        Clique order (r >= 3).
    degeneracy_bound:
        λ — the promised degeneracy bound of the input graph.
    epsilon:
        Target accuracy.
    mode:
        ``"theory"`` or ``"practical"``.
    tau_constant, sample_constant, activity_repetitions,
    outer_repetitions, sample_cap:
        PRACTICAL-mode knobs; ignored in THEORY mode.
    """

    r: int
    degeneracy_bound: int
    epsilon: float = 0.2
    mode: str = "practical"
    tau_constant: float = 24.0
    sample_constant: float = 3.0
    activity_repetitions: int = 3
    outer_repetitions: int = 5
    sample_cap: int = 4000

    def __post_init__(self) -> None:
        if self.r < 3:
            raise EstimationError(f"ERS needs clique order r >= 3, got {self.r}")
        if self.degeneracy_bound < 1:
            raise EstimationError(
                f"degeneracy bound must be >= 1, got {self.degeneracy_bound}"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise EstimationError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.mode not in ("theory", "practical"):
            raise EstimationError(f"unknown mode {self.mode!r}")

    # -- the paper's constants -------------------------------------------

    @property
    def gamma_threshold(self) -> float:
        """γ of Algorithm 2: ε/(8r·r!)."""
        return self.epsilon / (8.0 * self.r * math.factorial(self.r))

    @property
    def beta_threshold(self) -> float:
        """β of Algorithm 2: 1/(6r)."""
        return 1.0 / (6.0 * self.r)

    @property
    def gamma_run(self) -> float:
        """γ of Algorithm 3: ε/(2r) (decay per level of ω̃)."""
        return self.epsilon / (2.0 * self.r)

    @property
    def beta_run(self) -> float:
        """β of Algorithm 3: 1/(18r)."""
        return 1.0 / (18.0 * self.r)

    def tau(self, t: int) -> float:
        """τ_t: the activity threshold scale at prefix length t.

        τ_t ∝ λ^{r-t} in both modes; τ_r = 1 by definition.
        """
        if t >= self.r:
            return 1.0
        if t < 2:
            raise EstimationError(f"tau is defined for t >= 2, got {t}")
        lam_power = float(self.degeneracy_bound) ** (self.r - t)
        if self.mode == "theory":
            beta, gamma = self.beta_threshold, self.gamma_threshold
            return (self.r ** (4 * self.r)) / (beta**self.r * gamma**2) * lam_power
        return self.tau_constant * lam_power

    def sample_multiplier(self) -> float:
        """The 3·ln(2/β)/γ² factor of the s_{t+1} formula."""
        if self.mode == "theory":
            beta, gamma = self.beta_run, self.gamma_run
            return 3.0 * math.log(2.0 / beta) / gamma**2
        return self.sample_constant

    def sample_size(self, base: float) -> int:
        """⌈base × multiplier⌉, capped in PRACTICAL mode."""
        raw = math.ceil(max(0.0, base) * self.sample_multiplier())
        if self.mode == "practical":
            return max(1, min(self.sample_cap, raw))
        return max(1, raw)

    def activity_q(self, n: int) -> int:
        """Repetitions of each activity estimate (Algorithm 18's q)."""
        if self.mode == "theory":
            return math.ceil(12.0 * math.log(float(n) ** (self.r + 10)))
        return self.activity_repetitions

    def outer_q(self, n: int) -> int:
        """Parallel StreamApproxClique runs for the median (Algorithm 2)."""
        if self.mode == "theory":
            return max(1, math.ceil(math.log(max(n, 3))))
        return self.outer_repetitions

    def abort_threshold(self, t: int, m: int, lower_bound: float) -> float:
        """Algorithm 3 line 13: abort when s_{t+1} explodes.

        ``4 m λ^{t-1} τ_{t+1} / L × (r!)² 3 ln(2/β) / (β^t γ²)`` in
        THEORY mode; PRACTICAL mode returns the sample cap so the run
        clamps instead of aborting (the clamp is reported upstream).
        """
        if self.mode == "practical":
            return float(self.sample_cap)
        beta, gamma = self.beta_run, self.gamma_run
        lam_power = float(self.degeneracy_bound) ** (t - 1)
        return (
            4.0
            * m
            * lam_power
            * self.tau(t + 1)
            / max(lower_bound, 1.0)
            * (math.factorial(self.r) ** 2)
            * 3.0
            * math.log(2.0 / beta)
            / (beta**t * gamma**2)
        )
