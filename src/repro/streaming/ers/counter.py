"""Algorithm 2 (StreamCountClique): median of parallel ERS runs.

Drives ``outer_q`` independent StreamApproxClique runs *in parallel
rounds* (they share every pass) and returns the median of their
estimates — the probability-amplification step of Algorithm 2.

Two entry points:

* :func:`count_cliques_stream` — the Theorem 2 insertion-only
  streaming algorithm (pass count <= 5r; asserted in tests);
* :func:`count_cliques_query_model` — the same round-adaptive
  algorithm against a direct oracle, i.e. the sublinear-time ERS
  algorithm the paper starts from.
"""

from __future__ import annotations

import statistics
from typing import Optional

from repro.errors import EstimationError
from repro.estimate.result import EstimateResult
from repro.oracle.direct import DirectAugmentedOracle
from repro.patterns.pattern import clique as clique_pattern
from repro.streaming.ers.params import ErsParameters
from repro.streaming.ers.rounds import stream_approx_clique_rounds
from repro.streams.stream import EdgeStream
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def clique_counter_program(
    params: ErsParameters, lower_bound: float, n: int, oracle, rng
):
    """Algorithm 2 as a ``(generators, finalize)`` pair.

    Shared by the one-shot entry points below and by :mod:`repro.engine`
    (the fused executor drives the same generators against the same
    oracle, so results are bit-identical for the same seeds).
    """
    outer = params.outer_q(n)
    runs = [
        stream_approx_clique_rounds(
            params, lower_bound, n, derive_rng(rng, f"ers-run-{j}")
        )
        for j in range(outer)
    ]

    def finalize(result) -> EstimateResult:
        estimates = [value if value is not None else 0.0 for value in result.outputs]
        median = statistics.median(estimates)
        space = getattr(oracle, "space", None)
        return EstimateResult(
            algorithm=f"ers-{params.mode}",
            pattern=f"K{params.r}",
            estimate=median,
            passes=result.rounds,
            space_words=space.peak_words if space is not None else 0,
            trials=outer,
            successes=sum(1 for value in estimates if value > 0),
            details={
                "queries": float(result.total_queries),
                "min_run": min(estimates),
                "max_run": max(estimates),
                "lower_bound": lower_bound,
            },
        )

    return runs, finalize


def _run(params: ErsParameters, lower_bound: float, n: int, oracle, rng) -> EstimateResult:
    runs, finalize = clique_counter_program(params, lower_bound, n, oracle, rng)
    return finalize(run_round_adaptive(runs, oracle))


def count_cliques_stream(
    stream: EdgeStream,
    r: int,
    degeneracy_bound: int,
    lower_bound: float,
    epsilon: float = 0.2,
    params: Optional[ErsParameters] = None,
    rng: RandomSource = None,
) -> EstimateResult:
    """Theorem 2: (1±ε)-approximate #K_r over an insertion-only stream.

    Parameters
    ----------
    stream:
        Insertion-only edge stream of a graph with degeneracy <= λ.
    r:
        Clique order (r >= 3).
    degeneracy_bound:
        λ — the degeneracy promise (Theorem 2's parameterization).
    lower_bound:
        L <= #K_r; drives the sample sizes, as in the paper.  For an
        unknown L combine with :func:`repro.estimate.geometric_search`.
    """
    if stream.allows_deletions:
        raise EstimationError("the ERS counter is an insertion-only algorithm")
    random_state = ensure_rng(rng)
    if params is None:
        params = ErsParameters(
            r=r, degeneracy_bound=degeneracy_bound, epsilon=epsilon
        )
    stream.reset_pass_count()
    oracle = InsertionStreamOracle(stream, derive_rng(random_state, "oracle"))
    result = _run(params, lower_bound, stream.n, oracle, random_state)
    result.m = stream.net_edge_count
    return result


def count_cliques_query_model(
    oracle: DirectAugmentedOracle,
    r: int,
    degeneracy_bound: int,
    lower_bound: float,
    epsilon: float = 0.2,
    params: Optional[ErsParameters] = None,
    rng: RandomSource = None,
) -> EstimateResult:
    """The sublinear-time ERS algorithm in the augmented query model."""
    random_state = ensure_rng(rng)
    if params is None:
        params = ErsParameters(
            r=r, degeneracy_bound=degeneracy_bound, epsilon=epsilon
        )
    result = _run(params, lower_bound, oracle.graph.n, oracle, random_state)
    result.m = oracle.graph.m
    return result
