"""The ERS algorithm as a round-adaptive generator.

Structure (matching Section 5.2 and Algorithms 3, 4, 17, 18):

* ``stream_approx_clique_rounds`` — one StreamApproxClique run:
  3 rounds of setup (edge count, R_2 sample, R_2 degrees), then two
  rounds per level t ∈ {2, …, r-1} (StreamSet), then the assignment
  phase, whose per-sample cascades all run in parallel rounds.
* ``_stream_set_rounds`` — Algorithm 4: given R_t with known degrees,
  sample up to s_{t+1} ordered (t+1)-cliques in two rounds
  (one f3 neighbor round, one f4/f2 verification round).
* ``_str_is_assigned_rounds`` / ``_str_act_rounds`` — Algorithms 17
  and 18: activity cascades for every ordering/prefix of a sampled
  r-clique, sharing rounds via :func:`parallel_rounds`.

Ordered-clique convention: R_2 holds *ordered* 2-cliques (a uniform
edge with a fair-coin orientation — one of 2m equally likely ordered
edges), so the estimator scale starts at 2m/s_2; each level multiplies
by dg(R_t)/s_{t+1}.  Every unordered r-clique is counted through
exactly one assigned ordering, making the estimator unbiased up to
activity-threshold truncation (the loss the ERS analysis bounds).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    RandomEdgeQuery,
)
from repro.streaming.ers.params import ErsParameters
from repro.transform.driver import parallel_rounds
from repro.utils.rng import derive_rng

OrderedClique = Tuple[int, ...]


def _min_degree_vertex(clique: OrderedClique, degrees: Dict[int, int]) -> int:
    """The vertex whose degree defines dg(T̂); ties break by id."""
    return min(clique, key=lambda v: (degrees[v], v))


def _clique_degree(clique: OrderedClique, degrees: Dict[int, int]) -> int:
    """dg(T̂): the minimum degree over the clique's vertices."""
    return min(degrees[v] for v in clique)


def _weighted_pick(items: Sequence[OrderedClique], weights: Sequence[int], rng):
    """One draw proportional to *weights* (with replacement)."""
    total = sum(weights)
    mark = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if mark < acc:
            return item
    return items[-1]


def _stream_set_rounds(
    cliques: Sequence[OrderedClique],
    degrees: Dict[int, int],
    samples: int,
    rng,
):
    """Algorithm 4 (StreamSet): sample ordered (t+1)-cliques in 2 rounds.

    Returns ``(next_cliques, new_degrees)``.  Each draw picks T̂ from
    *cliques* with probability dg(T̂)/dg(R_t), then a uniform neighbor
    w of T̂'s min-degree vertex; the pair survives iff (T̂, w) is a
    clique.  Jointly, every (T̂, neighbor-slot) pair is hit with
    probability exactly 1/dg(R_t) — the cancellation the estimator
    relies on.
    """
    weights = [_clique_degree(T, degrees) for T in cliques]
    if not cliques or sum(weights) == 0:
        return [], {}

    draws: List[Tuple[OrderedClique, int]] = []
    batch: List[Query] = []
    for _ in range(samples):
        clique = _weighted_pick(cliques, weights, rng)
        pivot = _min_degree_vertex(clique, degrees)
        index = rng.randrange(degrees[pivot])
        draws.append((clique, pivot))
        batch.append(NeighborQuery(pivot, index))
    answers = yield batch

    verify_batch: List[Query] = []
    slots: List[Optional[Tuple[OrderedClique, int, int, int]]] = []
    for (clique, pivot), neighbor in zip(draws, answers):
        if neighbor is None or neighbor in clique:
            slots.append(None)
            continue
        others = [v for v in clique if v != pivot]
        begin = len(verify_batch)
        verify_batch.extend(AdjacencyQuery(neighbor, v) for v in others)
        verify_batch.append(DegreeQuery(neighbor))
        slots.append((clique, neighbor, begin, len(others)))
    answers2 = yield verify_batch

    next_cliques: List[OrderedClique] = []
    new_degrees: Dict[int, int] = {}
    for slot in slots:
        if slot is None:
            continue
        clique, neighbor, begin, count = slot
        adjacent = all(answers2[begin : begin + count])
        neighbor_degree = answers2[begin + count]
        if adjacent:
            next_cliques.append((*clique, neighbor))
            new_degrees[neighbor] = neighbor_degree
    return next_cliques, new_degrees


def _act_cascade_rounds(
    prefix: OrderedClique,
    prefix_length: int,
    degrees: Dict[int, int],
    params: ErsParameters,
    rng,
):
    """One repetition of the IsActive cascade (Algorithm 18 inner loop).

    Estimates ĉ_r(prefix) — the number of ordered r-cliques extending
    the prefix — and returns 1 iff ĉ_r <= τ_prefix/4.
    """
    local_degrees = dict(degrees)
    cliques: List[OrderedClique] = [prefix]
    omega = (1.0 - params.epsilon / 2.0) * params.tau(prefix_length)
    scale = 1.0
    for t in range(prefix_length, params.r):
        if not cliques:
            return 0
        dg_level = sum(_clique_degree(T, local_degrees) for T in cliques)
        if dg_level == 0:
            return 0
        samples = params.sample_size(dg_level * params.tau(t + 1) / max(omega, 1e-12))
        cliques, new_degrees = yield from _stream_set_rounds(
            cliques, local_degrees, samples, rng
        )
        local_degrees.update(new_degrees)
        omega = (1.0 - params.gamma_run) * omega * samples / dg_level
        scale *= dg_level / samples
    estimate = scale * len(cliques)
    return 1 if estimate <= params.tau(prefix_length) / 4.0 else 0


def _str_act_rounds(
    prefix: OrderedClique,
    prefix_length: int,
    degrees: Dict[int, int],
    params: ErsParameters,
    n: int,
    rng,
):
    """Algorithm 18 (StrAct): majority over q activity repetitions."""
    q = params.activity_q(n)
    cascades = [
        _act_cascade_rounds(prefix, prefix_length, degrees, params, derive_rng(rng, ell))
        for ell in range(q)
    ]
    votes = yield from parallel_rounds(cascades)
    return sum(votes) >= q / 2.0


def _str_is_assigned_rounds(
    clique: OrderedClique,
    degrees: Dict[int, int],
    params: ErsParameters,
    n: int,
    rng,
):
    """Algorithm 17 (StrIsAssigned): is *clique*'s ordering assigned?

    Assigned iff the sampled ordering is fully active and is the
    lexicographically first fully active ordering of its unordered
    clique.  Prefix lengths run over {2, …, r-1}: τ_r = 1 would make a
    length-r prefix never active (ĉ_r = 1 > 1/4), so — as in [ERS20] —
    activity is only meaningful for proper prefixes.
    """
    r = params.r
    vertex_set = sorted(set(clique))
    orderings = [tuple(p) for p in itertools.permutations(vertex_set)]
    prefixes: List[OrderedClique] = []
    seen = set()
    for ordering in orderings:
        for t in range(2, r):
            prefix = ordering[:t]
            if prefix not in seen:
                seen.add(prefix)
                prefixes.append(prefix)

    cascades = [
        _str_act_rounds(prefix, len(prefix), degrees, params, n, derive_rng(rng, i))
        for i, prefix in enumerate(prefixes)
    ]
    results = yield from parallel_rounds(cascades)
    active: Dict[OrderedClique, bool] = dict(zip(prefixes, results))

    def fully_active(ordering: OrderedClique) -> bool:
        return all(active[ordering[:t]] for t in range(2, r))

    if not fully_active(clique):
        return 0
    for ordering in orderings:
        if ordering < clique and fully_active(ordering):
            return 0
    return 1


def stream_approx_clique_rounds(
    params: ErsParameters,
    lower_bound: float,
    n: int,
    rng,
):
    """Algorithm 3 (StreamApproxClique) as one round-adaptive run.

    Returns an estimate of #K_r (a float; 0.0 when sampling dies out).
    """
    r = params.r

    # Rounds 1-3: m, the R_2 edge sample, and R_2's degrees.
    answers = yield [EdgeCountQuery()]
    m = answers[0]
    if not m:
        return 0.0

    omega = (1.0 - params.epsilon / 2.0) * lower_bound
    s2 = params.sample_size(2.0 * m * params.tau(2) / max(omega, 1e-12))
    answers = yield [RandomEdgeQuery() for _ in range(s2)]
    cliques: List[OrderedClique] = []
    for edge in answers:
        if edge is None:
            continue
        u, v = edge
        cliques.append((u, v) if rng.random() < 0.5 else (v, u))
    if not cliques:
        return 0.0
    scale = (2.0 * m) / s2
    omega = (1.0 - params.gamma_run) * omega * s2 / (2.0 * m)

    vertices = sorted({v for T in cliques for v in T})
    answers = yield [DegreeQuery(v) for v in vertices]
    degrees: Dict[int, int] = dict(zip(vertices, answers))

    # Levels t = 2 .. r-1: two rounds each (StreamSet).
    for t in range(2, r):
        if not cliques:
            return 0.0
        dg_level = sum(_clique_degree(T, degrees) for T in cliques)
        if dg_level == 0:
            return 0.0
        samples = params.sample_size(dg_level * params.tau(t + 1) / max(omega, 1e-12))
        cliques, new_degrees = yield from _stream_set_rounds(
            cliques, degrees, samples, rng
        )
        degrees.update(new_degrees)
        omega = (1.0 - params.gamma_run) * omega * samples / dg_level
        scale *= dg_level / samples

    if not cliques:
        return 0.0

    # Assignment phase: one cascade bundle per sampled r-clique.
    bundles = [
        _str_is_assigned_rounds(clique, degrees, params, n, derive_rng(rng, f"assign-{i}"))
        for i, clique in enumerate(cliques)
    ]
    assigned_flags = yield from parallel_rounds(bundles)
    assigned_total = sum(assigned_flags)
    return scale * assigned_total
