"""Theorem 2: the 5r-pass ERS clique counter for low-degeneracy graphs.

Implements the paper's simplified ERS algorithm [ERS20] in the
augmented general graph model as a round-adaptive algorithm
(Algorithms 2, 3, 4, 17, 18), which Theorem 9 turns into an
insertion-only streaming algorithm with one pass per round.
"""

from repro.streaming.ers.params import ErsParameters
from repro.streaming.ers.counter import count_cliques_stream, count_cliques_query_model

__all__ = ["ErsParameters", "count_cliques_stream", "count_cliques_query_model"]
