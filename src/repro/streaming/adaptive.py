"""Counting with *no* prior knowledge of #H.

The paper (§1.1) parameterizes its algorithms by a lower bound
L <= #H and points to the standard fix when nothing is known: a
geometric search over L (the device made explicit in Lemma 21 for the
ERS counter).  This module wires the full workflow together for
arbitrary H:

1. start from the AGM bound m^ρ(H) >= #H ([AGM08]) — a guess that is
   always valid;
2. run the 3-pass counter (Theorem 17) with trial budget sized for
   the current guess L;
3. accept when the estimate is consistent (estimate >= L), else
   shrink L geometrically and repeat.

Each probe costs 3 passes, so the total pass count is 3·evaluations =
O(log(m^ρ(H)/#H)) passes — the price of knowing nothing.  The sum of
the trial budgets is dominated (geometric series) by the final probe's
~(2m)^ρ/(ε²#H), so the space bound is unchanged up to constants.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.estimate.concentration import ParamMode
from repro.estimate.result import EstimateResult
from repro.estimate.search import geometric_search
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def count_subgraphs_unknown(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.25,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
    shrink: float = 4.0,
    max_trials_per_probe: int = 200_000,
) -> EstimateResult:
    """Estimate #H with no lower bound given (Lemma 21 workflow).

    Returns the accepted probe's result with the search metadata in
    ``details`` (``probes``, ``accepted_L``); ``passes`` accumulates
    over all probes (3 per probe).

    *max_trials_per_probe* caps the budget of any single probe so a
    tiny #H (huge m^ρ/#H) degrades the estimate rather than hanging;
    the cap is recorded in ``details["capped"]``.
    """
    if stream.allows_deletions:
        raise EstimationError(
            "count_subgraphs_unknown drives the insertion-only counter; "
            "consolidate the stream or use the turnstile counter with "
            "an explicit lower bound"
        )
    random_state = ensure_rng(rng)
    m = stream.net_edge_count
    if m == 0:
        return EstimateResult(
            algorithm="fgp-3pass-geometric",
            pattern=pattern.name,
            estimate=0.0,
            passes=0,
            m=0,
        )
    upper = float(2 * m) ** pattern.rho()

    probes = []

    def probe(guess: float) -> float:
        result = count_subgraphs_insertion_only(
            stream,
            pattern,
            epsilon=epsilon,
            lower_bound=max(guess, 1.0),
            trials=None,
            rng=derive_rng(random_state, f"probe-{len(probes)}"),
            param_mode=param_mode,
        )
        if result.trials >= max_trials_per_probe:
            # Re-run capped (resolve_trials has no cap of its own).
            result = count_subgraphs_insertion_only(
                stream,
                pattern,
                trials=max_trials_per_probe,
                rng=derive_rng(random_state, f"probe-cap-{len(probes)}"),
                param_mode=param_mode,
            )
        probes.append(result)
        return result.estimate

    estimate, accepted, evaluations = geometric_search(
        probe, upper_bound=upper, floor=1.0, shrink=shrink
    )
    last = probes[-1]
    total_passes = sum(r.passes for r in probes)
    capped = any(r.trials >= max_trials_per_probe for r in probes)
    return EstimateResult(
        algorithm="fgp-3pass-geometric",
        pattern=pattern.name,
        estimate=estimate,
        passes=total_passes,
        space_words=max(r.space_words for r in probes),
        trials=sum(r.trials for r in probes),
        successes=last.successes,
        m=m,
        details={
            "probes": float(evaluations),
            "accepted_L": accepted,
            "agm_start": upper,
            "capped": 1.0 if capped else 0.0,
        },
    )
