"""Theorem 1: the 3-pass turnstile subgraph counter.

Identical estimator shape to Theorem 17, but every instance speaks the
relaxed query dialect (Definition 10) and the oracle answers over a
turnstile stream with ℓ0-samplers (Theorem 11's emulation):

* f1 — ℓ0-sample of the adjacency-matrix vector,
* f3 — ℓ0-sample of the queried vertex's adjacency column,
* f2/f4 — signed counters.

Space per instance is O(log^4 n) bits (Lemma 7), total
~O(m^ρ(H)/(ε² #H)) — Theorem 1's bound.
"""

from __future__ import annotations

from typing import Optional

from repro.estimate.concentration import ParamMode
from repro.estimate.result import EstimateResult
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import fgp_success_estimate, resolve_trials
from repro.streams.stream import EdgeStream
from repro.transform.driver import run_round_adaptive
from repro.transform.turnstile import TurnstileStreamOracle
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def count_subgraphs_turnstile(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
    sampler_repetitions: int = 8,
) -> EstimateResult:
    """Theorem 1: (1±ε)-approximate #H in 3 turnstile passes.

    Works on streams with deletions; the estimate concerns the final
    graph (all updates applied).  *sampler_repetitions* trades ℓ0
    failure probability against space.
    """
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)

    stream.reset_pass_count()
    oracle, generators, finalize = turnstile_counter_program(
        stream, pattern, k, random_state, sampler_repetitions=sampler_repetitions
    )
    return finalize(run_round_adaptive(generators, oracle))


def turnstile_counter_program(
    stream: EdgeStream,
    pattern: Pattern,
    trials: int,
    random_state,
    sampler_repetitions: int = 8,
):
    """The Theorem 1 run as an ``(oracle, generators, finalize)`` triple.

    Shared by :func:`count_subgraphs_turnstile` and :mod:`repro.engine`
    (see :func:`repro.streaming.three_pass.insertion_counter_program`).
    """
    oracle = TurnstileStreamOracle(
        stream,
        derive_rng(random_state, "oracle"),
        sampler_repetitions=sampler_repetitions,
    )
    generators = [
        subgraph_sampler_rounds(
            pattern, rng=derive_rng(random_state, i), mode=SamplerMode.RELAXED
        )
        for i in range(trials)
    ]

    def finalize(run) -> EstimateResult:
        m = stream.net_edge_count
        rho = pattern.rho()
        successes, estimate = fgp_success_estimate(run.outputs, trials, m, rho)
        return EstimateResult(
            algorithm="fgp-3pass-turnstile",
            pattern=pattern.name,
            estimate=estimate,
            passes=run.rounds,
            space_words=oracle.space.peak_words,
            trials=trials,
            successes=successes,
            m=m,
            details={
                "rho": rho,
                "queries": float(run.total_queries),
                "success_rate": successes / trials,
            },
        )

    return oracle, generators, finalize
