"""A 2-pass counter for star-decomposable patterns.

The paper's conclusion asks whether a **2-pass** algorithm with space
~O(m^ρ(H)/(ε²#H)) exists for arbitrary H.  This module answers it
affirmatively for a natural subclass: patterns whose Lemma 4
decomposition contains **no odd cycles** (only stars).

Why it works: in Algorithm 1, pass 2 exists solely to complete odd
cycles (the f3 wedge query needs √(2m), hence needs m from pass 1).
Star pieces issue *no* queries between the edge-sampling pass and the
verification pass, so for a star-only decomposition the FGP sampler is
**2-round adaptive** and Theorem 9 yields a 2-pass streaming algorithm
with the same space and the same per-copy guarantee 1/(2m)^ρ(H).

The subclass is large: every star S_k, every path P_k, all even
cycles, matchings, and — notably — **every clique K_r with even r**
(K_4 decomposes into two disjoint S_1 pieces, ρ(K_4) = 2).  Any H
whose optimal decomposition needs an odd cycle (triangles, C5, K_5,
...) is rejected; for those the 3-pass algorithm is the best this
library offers, matching the open question's remaining gap.

Experiment E12 measures that the 2-pass counter matches the 3-pass
counter's accuracy at identical trial budgets while using one pass
fewer.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EstimationError
from repro.estimate.concentration import ParamMode
from repro.estimate.result import EstimateResult
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import fgp_success_estimate, resolve_trials
from repro.streams.stream import EdgeStream
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def is_star_decomposable(pattern: Pattern) -> bool:
    """Whether H's optimal Lemma 4 decomposition uses only stars."""
    return not pattern.decomposition().cycle_lengths


def require_star_decomposable(pattern: Pattern) -> None:
    """Raise unless the 2-pass counter supports *pattern*.

    The single home of the guard (and its message) shared by the
    one-shot counter and the engine's 2-pass entry points.
    """
    if not is_star_decomposable(pattern):
        cycles = pattern.decomposition().cycle_lengths
        raise EstimationError(
            f"pattern {pattern.name!r} decomposes with odd cycles {cycles}; "
            "the 2-pass counter requires a star-only decomposition"
        )


def count_subgraphs_two_pass(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
) -> EstimateResult:
    """(1±ε)-approximate #H in **two** insertion-only passes.

    Requires :func:`is_star_decomposable`; raises
    :class:`~repro.errors.EstimationError` otherwise.  Space and
    accuracy match :func:`~repro.streaming.three_pass.count_subgraphs_insertion_only`
    at the same trial budget — only the pass count differs.
    """
    require_star_decomposable(pattern)
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)

    stream.reset_pass_count()
    oracle, generators, finalize = two_pass_counter_program(
        stream, pattern, k, random_state
    )
    return finalize(run_round_adaptive(generators, oracle))


def two_pass_counter_program(
    stream: EdgeStream, pattern: Pattern, trials: int, random_state
):
    """The 2-pass run as an ``(oracle, generators, finalize)`` triple.

    Shared by :func:`count_subgraphs_two_pass` and :mod:`repro.engine`
    (see :func:`repro.streaming.three_pass.insertion_counter_program`).
    The caller is responsible for the :func:`is_star_decomposable` check.
    """
    oracle = InsertionStreamOracle(stream, derive_rng(random_state, "oracle"))
    generators = [
        subgraph_sampler_rounds(
            pattern,
            rng=derive_rng(random_state, i),
            mode=SamplerMode.AUGMENTED,
            skip_empty_wedge_round=True,
        )
        for i in range(trials)
    ]

    def finalize(run) -> EstimateResult:
        m = stream.net_edge_count
        rho = pattern.rho()
        successes, estimate = fgp_success_estimate(run.outputs, trials, m, rho)
        return EstimateResult(
            algorithm="fgp-2pass-insertion",
            pattern=pattern.name,
            estimate=estimate,
            passes=run.rounds,
            space_words=oracle.space.peak_words,
            trials=trials,
            successes=successes,
            m=m,
            details={
                "rho": rho,
                "queries": float(run.total_queries),
                "success_rate": successes / trials,
            },
        )

    return oracle, generators, finalize
