"""Batch-cache policies: bounding what a stream keeps resident.

The columnar pipeline decodes each stream pass into
:class:`~repro.streams.batch.EdgeBatch` objects.  Re-decoding every
pass is wasted work for multi-pass estimators, but the original
implementation cached **every batch of every batch size forever** —
O(m × #batch-sizes) growth, plus the batches' lazily materialized
tuple views (an order of magnitude larger than the columns), which
made real, disk-resident graphs impossible to stream.

A :class:`BatchCachePolicy` makes the retention decision explicit.
Streams consult their policy per ``(batch_size, batch_index)`` key:

``"all"`` (:class:`AllBatchCache`)
    The historical behavior — unbounded retention, one decode per
    stream per batch size.  Right for small synthetic streams that are
    re-read many times (the default for in-memory
    :class:`~repro.streams.stream.EdgeStream`).

``"lru"`` (:class:`LRUBatchCache`)
    Bounded by a byte budget over the batches' column bytes
    (:attr:`~repro.streams.batch.EdgeBatch.nbytes`).  Least-recently
    used batches — and their materialized decoded views — are dropped
    once the budget is exceeded, so a multi-pass run over a graph
    larger than the budget keeps only a bounded working set resident.
    The policy meters itself: ``peak_resident_bytes`` is asserted
    against the budget in the regression tests.

``"none"`` (:class:`NoBatchCache`)
    Nothing is retained; every pass re-decodes (for a
    :class:`~repro.streams.datasets.DiskEdgeStream`, straight from
    disk — the default there).

Estimates are **bit-identical across policies**: a policy only decides
whether a batch object is rebuilt or reused, never what it contains
(pinned by ``tests/test_cache_policies.py`` across both execution
backends).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from repro.errors import StreamError

__all__ = [
    "BatchCachePolicy",
    "AllBatchCache",
    "LRUBatchCache",
    "NoBatchCache",
    "DEFAULT_LRU_BUDGET_BYTES",
    "parse_byte_size",
    "resolve_cache_policy",
]

#: Cache key: ``(batch_size, batch_index)`` within a stream.
CacheKey = Tuple[int, int]

#: Default LRU byte budget (column bytes): 256 MiB ≈ 11M edges of
#: int64 ``u``/``v``/``delta`` columns resident at once.
DEFAULT_LRU_BUDGET_BYTES = 256 << 20

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
}


def parse_byte_size(text: Union[int, str]) -> int:
    """A byte count from ``4096``, ``"64M"``, ``"1gb"``, ``"512kb"``, ...

    Case-insensitive suffixes ``b``/``k``/``kb``/``m``/``mb``/``g``/
    ``gb`` (powers of 1024).  Raises :class:`~repro.errors.StreamError`
    on anything else.
    """
    if isinstance(text, bool) or not isinstance(text, (int, str)):
        raise StreamError(f"byte size must be an int or string, got {text!r}")
    if isinstance(text, int):
        if text < 1:
            raise StreamError(f"byte size must be >= 1, got {text}")
        return text
    raw = text.strip().lower()
    digits = raw.rstrip("kmgb")
    suffix = raw[len(digits):]
    if not digits.isdigit() or suffix not in _SIZE_SUFFIXES:
        raise StreamError(
            f"unparseable byte size {text!r}; expected e.g. 4096, '64M', '1gb'"
        )
    value = int(digits) * _SIZE_SUFFIXES[suffix]
    if value < 1:
        raise StreamError(f"byte size must be >= 1, got {text!r}")
    return value


class BatchCachePolicy:
    """Decides which decoded :class:`EdgeBatch` objects stay resident.

    Subclasses implement :meth:`get` / :meth:`put`; the bookkeeping
    properties (``resident_bytes``, ``peak_resident_bytes``,
    ``hits``/``misses``) are shared so tests and benchmarks can meter
    any policy uniformly.
    """

    #: Short name used in CLI flags and reprs.
    name = "?"

    def __init__(self) -> None:
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey):
        """The cached batch for *key*, or ``None`` (counts hit/miss)."""
        raise NotImplementedError

    def put(self, key: CacheKey, batch) -> None:
        """Offer a freshly decoded *batch* for retention under *key*."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every retained batch (peak and hit counters survive)."""
        raise NotImplementedError

    def _track_insert(self, nbytes: int) -> None:
        self.resident_bytes += nbytes
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(resident={self.resident_bytes}, "
            f"peak={self.peak_resident_bytes}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class AllBatchCache(BatchCachePolicy):
    """Unbounded retention — the historical ``EdgeStream`` behavior."""

    name = "all"

    def __init__(self) -> None:
        super().__init__()
        self._batches: Dict[CacheKey, object] = {}

    def get(self, key: CacheKey):
        batch = self._batches.get(key)
        if batch is None:
            self.misses += 1
        else:
            self.hits += 1
        return batch

    def put(self, key: CacheKey, batch) -> None:
        if key not in self._batches:
            self._batches[key] = batch
            self._track_insert(batch.nbytes)

    def clear(self) -> None:
        self._batches.clear()
        self.resident_bytes = 0


class NoBatchCache(BatchCachePolicy):
    """Retain nothing: every pass re-decodes (or re-reads from disk)."""

    name = "none"

    def get(self, key: CacheKey):
        self.misses += 1
        return None

    def put(self, key: CacheKey, batch) -> None:
        pass

    def clear(self) -> None:
        pass


class LRUBatchCache(BatchCachePolicy):
    """Least-recently-used retention bounded by a column-byte budget.

    The budget meters the batches' defining columns
    (:attr:`~repro.streams.batch.EdgeBatch.nbytes`); evicting a batch
    also releases its lazily materialized decoded views, which is
    where the bulk of the memory of the old unbounded cache went.  A
    single batch larger than the whole budget is served uncached, so
    ``peak_resident_bytes <= budget_bytes`` always holds.
    """

    name = "lru"

    def __init__(self, budget_bytes: Union[int, str] = DEFAULT_LRU_BUDGET_BYTES) -> None:
        super().__init__()
        self.budget_bytes = parse_byte_size(budget_bytes)
        self._batches: "OrderedDict[CacheKey, object]" = OrderedDict()

    def get(self, key: CacheKey):
        batch = self._batches.get(key)
        if batch is None:
            self.misses += 1
            return None
        self.hits += 1
        self._batches.move_to_end(key)
        return batch

    def put(self, key: CacheKey, batch) -> None:
        if key in self._batches:
            self._batches.move_to_end(key)
            return
        nbytes = batch.nbytes
        if nbytes > self.budget_bytes:
            return  # larger than the whole budget: serve uncached
        while self._batches and self.resident_bytes + nbytes > self.budget_bytes:
            _, evicted = self._batches.popitem(last=False)
            self.resident_bytes -= evicted.nbytes
        self._batches[key] = batch
        self._track_insert(nbytes)

    def clear(self) -> None:
        self._batches.clear()
        self.resident_bytes = 0


def resolve_cache_policy(spec) -> BatchCachePolicy:
    """A :class:`BatchCachePolicy` from a user-facing spec.

    Accepts a policy instance (returned as-is), ``"all"``, ``"none"``,
    ``"lru"`` (default budget), or ``"lru:<bytes>"`` with the sizes of
    :func:`parse_byte_size` (e.g. ``"lru:64M"``).  ``None`` means
    ``"all"`` — the historical default for in-memory streams.
    """
    if spec is None:
        return AllBatchCache()
    if isinstance(spec, BatchCachePolicy):
        return spec
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered == "all":
            return AllBatchCache()
        if lowered == "none":
            return NoBatchCache()
        if lowered == "lru":
            return LRUBatchCache()
        if lowered.startswith("lru:"):
            return LRUBatchCache(parse_byte_size(lowered[4:]))
    raise StreamError(
        f"unknown cache policy {spec!r}; expected 'all', 'none', 'lru', "
        "'lru:<bytes>', or a BatchCachePolicy instance"
    )
