"""Persisting update logs.

Text format, one update per line: ``+ u v`` or ``- u v`` with an
optional ``# n <count>`` header.  Lets examples and experiments ship a
workload to another process (e.g. the privacy example's per-holder
shards) and replays deterministically.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from repro.errors import StreamError
from repro.streams.stream import EdgeStream, Update

PathLike = Union[str, "os.PathLike[str]"]


def write_update_log(stream: EdgeStream, path: PathLike) -> None:
    """Write *stream*'s updates as a text log (consumes one pass)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# n {stream.n}\n")
        for update in stream.updates():
            sign = "+" if update.delta > 0 else "-"
            handle.write(f"{sign} {update.u} {update.v}\n")
    stream.reset_pass_count()


def read_update_log(path: PathLike, n: Optional[int] = None) -> EdgeStream:
    """Read a text log written by :func:`write_update_log`."""
    updates: List[Update] = []
    header_n: Optional[int] = None
    saw_deletion = False
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                fields = line[1:].split()
                if len(fields) >= 2 and fields[0] == "n" and fields[1].isdigit():
                    header_n = int(fields[1])
                continue
            fields = line.split()
            if len(fields) != 3 or fields[0] not in ("+", "-"):
                raise StreamError(f"{path}:{line_number}: expected '+|- u v', got {line!r}")
            try:
                u, v = int(fields[1]), int(fields[2])
            except ValueError as exc:
                raise StreamError(f"{path}:{line_number}: non-integer endpoint") from exc
            delta = 1 if fields[0] == "+" else -1
            saw_deletion = saw_deletion or delta < 0
            updates.append(Update(u, v, delta))
    if n is None:
        n = header_n
    if n is None:
        n = 1 + max((max(u.u, u.v) for u in updates), default=-1)
    return EdgeStream(n, updates, allow_deletions=saw_deletion)
