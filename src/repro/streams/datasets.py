"""Out-of-core dataset ingestion: real graphs as first-class workloads.

The paper's estimators are built for massive streams, yet the repro
only ever fed them small in-memory synthetic graphs.  This module
opens the disk-resident workload end to end:

* **chunked text readers** for SNAP-style edge lists
  (:func:`read_snap_chunks`) — comment lines, arbitrary raw vertex
  ids, duplicate/reversed edges, self-loops — never holding more than
  a chunk of text in memory at a time;
* a **compact binary update format** (:class:`BinaryUpdateWriter`,
  ``.reb``: one header + flat ``u``/``v`` ``int64`` and ``delta``
  ``int8`` columns) that :class:`DiskEdgeStream` memory-maps, plus an
  ``.npz`` twin for interchange (:func:`save_npz_updates`);
* **conversion** (:func:`convert_edge_list`, CLI ``repro convert``):
  SNAP text → binary, with vertex-id compaction to ``[0, n)`` and
  first-occurrence deduplication so the result is a valid simple-graph
  stream;
* **turnstile scenario generators** layered on top of any edge array
  (:func:`deletion_heavy_updates`, :func:`sliding_window_updates`,
  :func:`degree_adversarial_order`) for deletion-heavy, windowed, and
  adversarial arrival workloads at dataset scale;
* :class:`DiskEdgeStream` — the out-of-core counterpart of
  :class:`~repro.streams.stream.EdgeStream`: same pass-counting
  surface (``updates()`` / ``batches()`` / metadata), decoded in
  bounded chunks from the memmap, with batch retention governed by a
  :class:`~repro.streams.cache.BatchCachePolicy` (default ``"none"``:
  stream straight from disk; ``"lru:<bytes>"`` keeps a bounded hot
  set for multi-pass runs);
* **hash-partitioned shards** for scatter/merge ingestion
  (:mod:`repro.engine.sharded`): :func:`shard_route` assigns every
  update to a shard by its *normalized* edge — all updates touching an
  edge land on the same shard, in stream order, so each shard is
  itself a prefix-valid turnstile stream — and
  :func:`write_stream_shards` / :func:`open_stream_shards` materialize
  and reopen the partitions as ``base.shard-K-of-N.reb`` files whose
  headers are cross-checked at open (:class:`ShardView` is the
  zero-copy in-memory alternative).

Everything downstream — the fused engine, both execution backends, the
oracles — works unchanged on a :class:`DiskEdgeStream`, because they
only ever consume stream *metadata* plus the dispatched batches.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from typing import IO, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import StreamError
from repro.faults.plan import fire as fire_fault
from repro.utils.retry import RetryPolicy, retry_call
from repro.graph.graph import Graph
from repro.streams.batch import EdgeBatch
from repro.streams.cache import BatchCachePolicy, resolve_cache_policy
from repro.streams.stream import (
    DEFAULT_CHUNK_SIZE,
    CachedBatchStream,
    Update,
)

__all__ = [
    "BINARY_MAGIC",
    "BinaryUpdateWriter",
    "DiskEdgeStream",
    "ShardView",
    "compact_ids",
    "convert_edge_list",
    "degree_adversarial_order",
    "deletion_heavy_updates",
    "is_stream_path",
    "open_disk_stream",
    "open_stream_shards",
    "read_snap_chunks",
    "save_npz_updates",
    "shard_path",
    "shard_route",
    "sliding_window_updates",
    "stream_shard_views",
    "write_binary_updates",
    "write_stream_shards",
]

#: Magic + version prefix of the ``.reb`` binary update format.
BINARY_MAGIC = b"REPROEB1"

#: Header layout after the magic: little-endian int64
#: ``(n, length, net_edge_count, flags)``; flag bit 0 = deletions.
_HEADER = struct.Struct("<4q")

_FLAG_DELETIONS = 1

#: Retry schedule for the atomic publish of a finished ``.reb`` file.
DISK_WRITE_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.5)

#: Lines per text-parsing chunk of :func:`read_snap_chunks`.
DEFAULT_TEXT_CHUNK_LINES = 1 << 16


# -- SNAP-style text ingestion -------------------------------------------


def read_snap_chunks(
    path_or_file: Union[str, "os.PathLike[str]", IO[str]],
    chunk_lines: int = DEFAULT_TEXT_CHUNK_LINES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream a SNAP-style edge list as ``(u, v)`` ``int64`` chunk pairs.

    SNAP conventions: ``#`` or ``%`` comment lines anywhere, one edge
    per line as whitespace-separated integers (extra columns —
    timestamps, weights — are ignored), ids arbitrary non-negative
    integers (NOT compacted here; see :func:`compact_ids`).  Memory
    stays O(*chunk_lines*) regardless of file size.
    """
    if chunk_lines < 1:
        raise StreamError(f"chunk_lines must be >= 1, got {chunk_lines}")

    def chunks(handle: IO[str]) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        us: List[int] = []
        vs: List[int] = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in "#%":
                continue
            fields = line.split()
            if len(fields) < 2:
                raise StreamError(
                    f"line {line_number}: expected at least 'u v', got {line!r}"
                )
            try:
                u, v = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise StreamError(
                    f"line {line_number}: non-integer endpoint in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise StreamError(f"line {line_number}: negative vertex id in {line!r}")
            us.append(u)
            vs.append(v)
            if len(us) >= chunk_lines:
                yield (
                    np.array(us, dtype=np.int64),
                    np.array(vs, dtype=np.int64),
                )
                us, vs = [], []
        if us:
            yield np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)

    if hasattr(path_or_file, "read"):
        return chunks(path_or_file)

    def from_path() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            for chunk in chunks(handle):
                yield chunk

    return from_path()


def compact_ids(
    u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relabel raw vertex ids to dense ``[0, n)`` (sorted by raw id).

    Returns ``(u_compact, v_compact, raw_ids)`` where ``raw_ids[k]``
    is the original id of compact vertex ``k``.  Raw SNAP ids
    routinely exceed 2^31 — compaction is what keeps the dense
    edge-id encoding (:func:`repro.streams.batch.edge_id`) exact
    downstream.
    """
    raw_ids = np.unique(np.concatenate((u, v)))
    return (
        np.searchsorted(raw_ids, u).astype(np.int64),
        np.searchsorted(raw_ids, v).astype(np.int64),
        raw_ids,
    )


def _dedupe_first_occurrence(
    u: np.ndarray, v: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop self-loops and repeated (normalized) edges, keeping order.

    Raw SNAP files list many edges twice (once per direction) and the
    stream model is a simple graph: every surviving edge appears once,
    at its first arrival position.
    """
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    proper = lo != hi
    lo, hi, u, v = lo[proper], hi[proper], u[proper], v[proper]
    if n <= 1 << 32:
        # Collision-free scalar key: n <= 2^32 (always true after
        # compaction) keeps lo * n + hi exact in uint64.
        keys = lo.astype(np.uint64) * np.uint64(n) + hi.astype(np.uint64)
        _, first = np.unique(keys, return_index=True)
    else:
        # Un-relabeled ids can be astronomically large; dedupe on the
        # pair columns directly (slower, but exact for any id range).
        _, first = np.unique(np.stack((lo, hi), axis=1), axis=0, return_index=True)
    first.sort()
    return u[first], v[first]


# -- binary update format ------------------------------------------------


class BinaryUpdateWriter:
    """Streaming writer of the ``.reb`` binary update format.

    Appends ``(u, v, delta)`` chunks without ever materializing the
    whole stream; :meth:`close` (or the context manager exit) seals
    the header with the final counts.  Used by
    :func:`convert_edge_list` and directly by scenario pipelines that
    generate updates chunk by chunk.

    The stream is assembled in a same-directory ``.part`` file and
    only renamed over *path* — after an fsync — once the header is
    sealed: a crash (or abort) at any point leaves either the
    previous complete file or nothing, never a torn ``.reb``.  The
    final publish fires the ``disk.write`` fault site and retries
    transient I/O errors.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        n: int,
        allow_deletions: bool = False,
    ) -> None:
        if n < 1:
            raise StreamError(f"binary stream needs n >= 1, got {n}")
        self._path = os.fspath(path)
        self._n = int(n)
        self._allow_deletions = bool(allow_deletions)
        self._length = 0
        self._net = 0
        self._closed = False
        self._part = self._path + ".part"
        self._handle = open(self._part, "wb")
        self._handle.write(BINARY_MAGIC)
        self._handle.write(_HEADER.pack(0, 0, 0, 0))  # sealed on close
        self._tmp_v = self._path + ".v.tmp"
        self._tmp_d = self._path + ".d.tmp"
        self._v_handle = open(self._tmp_v, "wb")
        self._d_handle = open(self._tmp_d, "wb")

    def __enter__(self) -> "BinaryUpdateWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def append(self, u, v, delta=None) -> None:
        """Append one chunk of updates (validated elementwise)."""
        if self._closed:
            raise StreamError("writer already closed")
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        if delta is None:
            delta = np.ones(len(u), dtype=np.int8)
        else:
            delta = np.ascontiguousarray(delta, dtype=np.int8)
        if not (len(u) == len(v) == len(delta)):
            raise StreamError("u/v/delta chunk lengths differ")
        if len(u) == 0:
            return
        if (u == v).any():
            raise StreamError("self-loop update in chunk")
        if ((u < 0) | (u >= self._n) | (v < 0) | (v >= self._n)).any():
            raise StreamError(f"vertex id outside [0, {self._n}) in chunk")
        bad = ~np.isin(delta, (1, -1))
        if bad.any():
            raise StreamError("update delta must be +1 or -1")
        if not self._allow_deletions and (delta < 0).any():
            raise StreamError("deletion in an insertion-only binary stream")
        self._handle.write(u.tobytes())
        self._v_handle.write(v.tobytes())
        self._d_handle.write(delta.tobytes())
        self._length += len(u)
        self._net += int(delta.sum(dtype=np.int64))

    def abort(self) -> None:
        """Discard the in-flight ``.part`` and spill files (failure path).

        A previous complete file at the target path is left untouched
        — the writer never opened it.
        """
        self._closed = True
        for handle in (self._handle, self._v_handle, self._d_handle):
            handle.close()
        for path in (self._part, self._tmp_v, self._tmp_d):
            if os.path.exists(path):
                os.remove(path)

    def close(self) -> str:
        """Seal the header and publish the file atomically; returns the path."""
        if self._closed:
            return self._path
        self._closed = True
        try:
            self._v_handle.close()
            self._d_handle.close()
            # u went straight after the header; v and delta columns are
            # appended from their spill files so each column is contiguous
            # (memmap-sliceable) without buffering the stream in memory.
            for tmp in (self._tmp_v, self._tmp_d):
                with open(tmp, "rb") as spill:
                    while True:
                        block = spill.read(1 << 22)
                        if not block:
                            break
                        self._handle.write(block)
                os.remove(tmp)
            flags = _FLAG_DELETIONS if self._allow_deletions else 0
            self._handle.seek(len(BINARY_MAGIC))
            self._handle.write(_HEADER.pack(self._n, self._length, self._net, flags))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

            def publish() -> None:
                fire_fault("disk.write")
                os.replace(self._part, self._path)

            retry_call(
                publish,
                policy=DISK_WRITE_RETRY,
                retry_on=(OSError,),
                seed=zlib.crc32(self._path.encode()),
                label=f"publish {self._path}",
            )
        except BaseException:
            for handle in (self._handle, self._v_handle, self._d_handle):
                handle.close()
            for path in (self._part, self._tmp_v, self._tmp_d):
                if os.path.exists(path):
                    os.remove(path)
            raise
        directory = os.path.dirname(self._path) or "."
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platforms without dir fds
            return self._path
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return self._path


def write_binary_updates(
    path: Union[str, "os.PathLike[str]"],
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    delta: Optional[np.ndarray] = None,
    allow_deletions: Optional[bool] = None,
) -> str:
    """One-shot :class:`BinaryUpdateWriter` for in-memory columns."""
    if allow_deletions is None:
        allow_deletions = delta is not None and bool((np.asarray(delta) < 0).any())
    with BinaryUpdateWriter(path, n, allow_deletions=allow_deletions) as writer:
        writer.append(u, v, delta)
    return os.fspath(path)


def save_npz_updates(
    path: Union[str, "os.PathLike[str]"],
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    delta: Optional[np.ndarray] = None,
) -> str:
    """Archive an update stream as a compressed ``.npz`` document.

    The interchange twin of the ``.reb`` format: portable and
    self-describing, but decompressed eagerly on load —
    :class:`DiskEdgeStream` reads it whole, so use ``.reb`` for graphs
    that must stay out of core.
    """
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    if delta is None:
        delta = np.ones(len(u), dtype=np.int8)
    delta = np.ascontiguousarray(delta, dtype=np.int8)
    net = int(delta.sum(dtype=np.int64))
    meta = np.array([int(n), len(u), net, int(bool((delta < 0).any()))], dtype=np.int64)
    np.savez_compressed(os.fspath(path), u=u, v=v, delta=delta, meta=meta)
    return os.fspath(path)


def is_stream_path(path: Union[str, "os.PathLike[str]"]) -> bool:
    """Whether *path* names a converted update stream (``.reb``/``.npz``)."""
    lowered = os.fspath(path).lower()
    return lowered.endswith(".reb") or lowered.endswith(".npz")


# -- the out-of-core stream ----------------------------------------------


class DiskEdgeStream(CachedBatchStream):
    """A pass-counting edge stream decoded on demand from disk.

    Drop-in for :class:`~repro.streams.stream.EdgeStream` wherever the
    consumer honors the stream protocol (metadata + ``updates()`` /
    ``batches()``): the fused engine, both backends, the oracles, and
    the one-shot counters all do.  The decoded batches are copies of
    memmap windows, so however long a pass is, resident memory is the
    cache policy's budget plus one in-flight batch.

    Parameters
    ----------
    path:
        A ``.reb`` file written by :class:`BinaryUpdateWriter` /
        ``repro convert``, or an ``.npz`` from
        :func:`save_npz_updates` (loaded eagerly).
    cache:
        Batch retention policy (see :mod:`repro.streams.cache`).
        Default ``"none"``: stream straight from disk each pass.
        ``"lru:<bytes>"`` bounds a reused working set for multi-pass
        estimators.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        cache="none",
    ) -> None:
        self._path = os.fspath(path)
        self._passes = 0
        self._cache: BatchCachePolicy = resolve_cache_policy(cache)
        lowered = self._path.lower()
        if lowered.endswith(".npz"):
            with np.load(self._path) as archive:
                meta = archive["meta"]
                self._n = int(meta[0])
                self._length = int(meta[1])
                self._net = int(meta[2])
                self._allow_deletions = bool(meta[3])
                self._u = np.ascontiguousarray(archive["u"], dtype=np.int64)
                self._v = np.ascontiguousarray(archive["v"], dtype=np.int64)
                self._delta = np.ascontiguousarray(archive["delta"], dtype=np.int8)
            if self._n < 1 or self._length < 0:
                raise StreamError(
                    f"{self._path}: nonsensical header "
                    f"(n={self._n}, length={self._length})"
                )
            if not (len(self._u) == len(self._v) == len(self._delta) == self._length):
                raise StreamError(f"{self._path}: column lengths disagree with header")
        else:
            with open(self._path, "rb") as handle:
                magic = handle.read(len(BINARY_MAGIC))
                if magic != BINARY_MAGIC:
                    raise StreamError(
                        f"{self._path}: not a repro binary update file "
                        f"(bad magic {magic!r})"
                    )
                header = handle.read(_HEADER.size)
                if len(header) != _HEADER.size:
                    raise StreamError(f"{self._path}: truncated header")
                self._n, self._length, self._net, flags = _HEADER.unpack(header)
            self._allow_deletions = bool(flags & _FLAG_DELETIONS)
            if self._n < 1 or self._length < 0:
                raise StreamError(
                    f"{self._path}: nonsensical header "
                    f"(n={self._n}, length={self._length})"
                )
            base = len(BINARY_MAGIC) + _HEADER.size
            expected = base + self._length * (8 + 8 + 1)
            actual = os.path.getsize(self._path)
            if actual < expected:
                raise StreamError(
                    f"{self._path}: truncated columns ({actual} < {expected} bytes)"
                )
            self._u = np.memmap(
                self._path, dtype=np.int64, mode="r", offset=base, shape=(self._length,)
            )
            self._v = np.memmap(
                self._path,
                dtype=np.int64,
                mode="r",
                offset=base + 8 * self._length,
                shape=(self._length,),
            )
            self._delta = np.memmap(
                self._path,
                dtype=np.int8,
                mode="r",
                offset=base + 16 * self._length,
                shape=(self._length,),
            )

    # -- stream protocol (mirrors EdgeStream) ---------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def n(self) -> int:
        return self._n

    @property
    def length(self) -> int:
        return self._length

    @property
    def net_edge_count(self) -> int:
        return self._net

    @property
    def allows_deletions(self) -> bool:
        return self._allow_deletions

    def updates(self) -> Iterator[Update]:
        """One pass as :class:`Update` objects (scalar compatibility path)."""
        self._passes += 1
        return self._iter_updates()

    def _iter_updates(self) -> Iterator[Update]:
        for start in range(0, self._length, DEFAULT_CHUNK_SIZE):
            stop = min(start + DEFAULT_CHUNK_SIZE, self._length)
            u = self._u[start:stop].tolist()
            v = self._v[start:stop].tolist()
            delta = self._delta[start:stop].tolist()
            for k in range(len(u)):
                yield Update(u[k], v[k], int(delta[k]))

    def _decode_batch(self, start: int, stop: int) -> EdgeBatch:
        # np.array copies the memmap window: the batch owns its
        # columns, so evicting it really releases the memory.
        return EdgeBatch(
            np.array(self._u[start:stop]),
            np.array(self._v[start:stop]),
            self._delta[start:stop],  # EdgeBatch widens to int64
        )

    def final_graph(self) -> Graph:
        """The stream's final graph, built in memory (O(m) — small streams
        and tests only; production estimators never need it)."""
        live = {}
        for start in range(0, self._length, DEFAULT_CHUNK_SIZE):
            stop = min(start + DEFAULT_CHUNK_SIZE, self._length)
            lo = np.minimum(self._u[start:stop], self._v[start:stop])
            hi = np.maximum(self._u[start:stop], self._v[start:stop])
            for a, b, d in zip(
                lo.tolist(), hi.tolist(), self._delta[start:stop].tolist()
            ):
                count = live.get((a, b), 0) + d
                if count < 0 or count > 1:
                    raise StreamError(
                        f"{self._path}: updates do not describe a simple graph "
                        f"at edge ({a}, {b})"
                    )
                live[(a, b)] = count
        return Graph(
            self._n, sorted(edge for edge, count in live.items() if count == 1)
        )

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        kind = "turnstile" if self._allow_deletions else "insertion-only"
        return (
            f"DiskEdgeStream({kind}, path={self._path!r}, n={self._n}, "
            f"length={self._length}, m={self._net}, cache={self._cache.name!r})"
        )


def open_disk_stream(
    path: Union[str, "os.PathLike[str]"], cache="none"
) -> DiskEdgeStream:
    """Open a converted stream file (``.reb`` or ``.npz``)."""
    return DiskEdgeStream(path, cache=cache)


# -- conversion ----------------------------------------------------------


def convert_edge_list(
    source: Union[str, "os.PathLike[str]", IO[str]],
    destination: Union[str, "os.PathLike[str]"],
    relabel: bool = True,
    dedupe: bool = True,
    chunk_lines: int = DEFAULT_TEXT_CHUNK_LINES,
) -> DiskEdgeStream:
    """Convert a SNAP-style text edge list into the binary format.

    Text parsing is chunked; the edge *columns* are accumulated in
    memory once (O(m) ints — compaction and first-occurrence
    deduplication are global decisions), then written out.  With
    ``relabel`` (the default) raw ids are compacted to ``[0, n)``,
    which is what keeps every downstream dense encoding exact however
    large the raw SNAP ids are.  Returns the opened
    :class:`DiskEdgeStream` (``cache="none"``).
    """
    chunks = list(read_snap_chunks(source, chunk_lines=chunk_lines))
    if chunks:
        u = np.concatenate([c[0] for c in chunks])
        v = np.concatenate([c[1] for c in chunks])
    else:
        u = np.empty(0, dtype=np.int64)
        v = np.empty(0, dtype=np.int64)
    if relabel:
        u, v, _ = compact_ids(u, v)
    n = 1 if not len(u) else int(max(u.max(), v.max())) + 1
    if dedupe:
        u, v = _dedupe_first_occurrence(u, v, n)
    else:
        if len(u) and (u == v).any():
            raise StreamError(
                "edge list contains self-loops; convert with dedupe=True"
            )
    destination = os.fspath(destination)
    if not is_stream_path(destination):
        raise StreamError(
            f"destination {destination!r} must end in .reb (memmap) or .npz; "
            "repro count recognizes converted streams by suffix"
        )
    if destination.lower().endswith(".npz"):
        save_npz_updates(destination, n, u, v)
    else:
        write_binary_updates(destination, n, u, v)
    return open_disk_stream(destination)


# -- turnstile scenario generators --------------------------------------


def _as_edge_columns(u, v) -> Tuple[np.ndarray, np.ndarray]:
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    if len(u) != len(v):
        raise StreamError("u/v edge columns differ in length")
    if len(u) and (u == v).any():
        raise StreamError("scenario input contains self-loops")
    return u, v


def deletion_heavy_updates(
    u,
    v,
    churn_rounds: int = 2,
    churn_fraction: float = 0.5,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A deletion-heavy turnstile stream ending at the input edge set.

    Each selected edge (*churn_fraction* of them, chosen by *seed*) is
    inserted and deleted *churn_rounds* times before its final
    insertion — ``churn_rounds`` of its ``2·churn_rounds + 1`` updates
    are deletions — while the final graph stays exactly the input
    edges (which must be duplicate-free).  Returns ``(u, v, delta)``
    columns ready
    for :func:`write_binary_updates` or
    :class:`~repro.streams.stream.EdgeStream`.
    """
    u, v = _as_edge_columns(u, v)
    if churn_rounds < 0:
        raise StreamError(f"churn_rounds must be >= 0, got {churn_rounds}")
    if not 0.0 <= churn_fraction <= 1.0:
        raise StreamError(f"churn_fraction must be in [0, 1], got {churn_fraction}")
    if not len(u):
        return u, v, np.empty(0, dtype=np.int8)
    rng = np.random.default_rng(seed)
    churned = rng.random(len(u)) < churn_fraction
    events_per_edge = np.where(churned, 2 * churn_rounds + 1, 1)
    repeats = events_per_edge.astype(np.int64)
    out_u = np.repeat(u, repeats)
    out_v = np.repeat(v, repeats)
    delta = np.ones(len(out_u), dtype=np.int8)
    # Within each churned edge's contiguous run the signs alternate
    # + - + - ... +, which keeps multiplicity in {0, 1} at every prefix.
    offsets = np.concatenate(([0], np.cumsum(repeats)[:-1]))
    position = np.arange(len(out_u), dtype=np.int64) - np.repeat(offsets, repeats)
    delta[position % 2 == 1] = -1
    return out_u, out_v, delta


def sliding_window_updates(
    u, v, window: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A sliding-window turnstile stream over the input arrival order.

    Insertions follow the input arrival order; deletions are emitted
    in window-sized blocks (each block retires the previous window
    before the next one streams in), so at most *window* edges are
    ever live and the final graph is the last ``min(window, m)``
    edges.  Models expiring-data workloads (windowed monitoring) as a
    valid turnstile stream.  Input edges must be duplicate-free
    (conversion dedupes by default).
    """
    u, v = _as_edge_columns(u, v)
    if window < 1:
        raise StreamError(f"window must be >= 1, got {window}")
    m = len(u)
    expiring = max(0, m - window)
    total = m + expiring
    out_u = np.empty(total, dtype=np.int64)
    out_v = np.empty(total, dtype=np.int64)
    delta = np.empty(total, dtype=np.int8)
    # Every prefix stays valid: a block first deletes exactly the
    # edges the previous block inserted (all live), then inserts its
    # own, so multiplicities never leave {0, 1}.
    write = 0
    for start in range(0, m, window):
        stop = min(start + window, m)
        count = stop - start
        if start:
            expired = slice(start - window, stop - window)
            exp_count = count
            out_u[write : write + exp_count] = u[expired]
            out_v[write : write + exp_count] = v[expired]
            delta[write : write + exp_count] = -1
            write += exp_count
        out_u[write : write + count] = u[start:stop]
        out_v[write : write + count] = v[start:stop]
        delta[write : write + count] = 1
        write += count
    return out_u[:write], out_v[:write], delta[:write]


def degree_adversarial_order(
    u, v, n: Optional[int] = None, hide_high_degree_last: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder edges so high-degree incidences arrive last (or first).

    The array-scale counterpart of
    :func:`repro.streams.generators.adversarial_order_stream`: edges
    are stably sorted by the larger endpoint degree, stressing
    reservoir samplers and the f3 arrival-index emulation on real
    graphs without materializing a :class:`~repro.graph.graph.Graph`.
    """
    u, v = _as_edge_columns(u, v)
    if n is None:
        n = 1 if not len(u) else int(max(u.max(), v.max())) + 1
    degrees = np.bincount(
        np.concatenate((u, v)), minlength=n
    )
    weight = np.maximum(degrees[u], degrees[v])
    order = np.argsort(weight, kind="stable")
    if not hide_high_degree_last:
        order = order[::-1]
    return u[order], v[order]


# -- hash-partitioned shards ---------------------------------------------

# Routing mix constants (64-bit golden-ratio / murmur3 finalizer odd
# multipliers).  The mix must be a pure function of the *normalized*
# edge so insertions and deletions of the same edge always land on the
# same shard — which is what keeps every shard a prefix-valid turnstile
# stream (per-edge multiplicities stay in {0, 1} on every shard prefix).
_SHARD_MIX_LO = np.uint64(0x9E3779B97F4A7C15)
_SHARD_MIX_HI = np.uint64(0xC2B2AE3D27D4EB4F)
_SHARD_MIX_FINAL = np.uint64(0xFF51AFD7ED558CCD)
_SHARD_MIX_SHIFT = np.uint64(33)

_SHARD_NAME = re.compile(r"\.shard-(\d+)-of-(\d+)\.reb$")


def shard_route(u, v, shards: int) -> np.ndarray:
    """Deterministic shard index of each update, from its normalized edge.

    Vectorized 64-bit multiply-mix over ``(min(u,v), max(u,v))`` —
    exact for any vertex id a stream can carry (the whole ``int64``
    range, not just 2^32), independent of update order and sign, and
    identical across platforms and runs.  Routing by edge (not by
    position) is load-balanced by the hash and, crucially, keeps all
    updates of one edge on one shard in their original order.
    """
    if shards < 1:
        raise StreamError(f"shard count must be >= 1, got {shards}")
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    lo = np.minimum(u, v).astype(np.uint64)
    hi = np.maximum(u, v).astype(np.uint64)
    with np.errstate(over="ignore"):
        mix = lo * _SHARD_MIX_LO + hi * _SHARD_MIX_HI
        mix ^= mix >> _SHARD_MIX_SHIFT
        mix *= _SHARD_MIX_FINAL
        mix ^= mix >> _SHARD_MIX_SHIFT
    return (mix % np.uint64(shards)).astype(np.int64)


def shard_path(path: Union[str, "os.PathLike[str]"], index: int, shards: int) -> str:
    """The canonical file name of shard *index*: ``base.shard-K-of-N.reb``.

    The shard count is part of the name so a stale partition from an
    earlier ``--shards`` value can never be silently mixed into a
    newer one — :func:`open_stream_shards` requires the exact complete
    set for one N.
    """
    if shards < 1:
        raise StreamError(f"shard count must be >= 1, got {shards}")
    if not 0 <= index < shards:
        raise StreamError(f"shard index {index} outside [0, {shards})")
    root, extension = os.path.splitext(os.fspath(path))
    if extension.lower() != ".reb":
        root = os.fspath(path)
    return f"{root}.shard-{index}-of-{shards}.reb"


def _raw_columns(stream) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(u, v, delta)`` columns backing any supported stream."""
    if hasattr(stream, "columns"):
        return stream.columns()
    return stream._u, stream._v, stream._delta


def write_stream_shards(
    source,
    shards: int,
    paths: Optional[Sequence[str]] = None,
    chunk_size: int = 1 << 20,
) -> List[str]:
    """Partition a converted stream into *shards* ``.reb`` shard files.

    *source* is a stream path (opened via :func:`open_disk_stream`) or
    any stream exposing raw columns.  Updates are routed by
    :func:`shard_route` in bounded chunks — memory stays
    O(*chunk_size*) however long the stream is — and each shard file
    is a complete, self-describing ``.reb``: same ``n`` and deletions
    flag as the source, its own length and net edge count (the
    per-shard sums reassemble the source's exactly, which
    :func:`open_stream_shards` re-verifies).  Publication inherits the
    writer's crash safety: every shard appears atomically or not at
    all.  Returns the shard paths in index order.
    """
    if shards < 1:
        raise StreamError(f"shard count must be >= 1, got {shards}")
    if isinstance(source, (str, os.PathLike)):
        source = open_disk_stream(source)
    if paths is None:
        base = getattr(source, "path", None)
        if base is None:
            raise StreamError(
                "source stream has no path; pass explicit shard paths"
            )
        paths = [shard_path(base, index, shards) for index in range(shards)]
    else:
        paths = [os.fspath(path) for path in paths]
        if len(paths) != shards:
            raise StreamError(f"{len(paths)} paths for {shards} shards")
    u, v, delta = _raw_columns(source)
    length = len(u)
    writers = [
        BinaryUpdateWriter(path, source.n, allow_deletions=source.allows_deletions)
        for path in paths
    ]
    try:
        for start in range(0, length, chunk_size):
            stop = min(start + chunk_size, length)
            chunk_u = np.asarray(u[start:stop])
            chunk_v = np.asarray(v[start:stop])
            chunk_delta = np.asarray(delta[start:stop])
            route = shard_route(chunk_u, chunk_v, shards)
            for index, writer in enumerate(writers):
                hit = route == index
                if hit.any():
                    writer.append(chunk_u[hit], chunk_v[hit], chunk_delta[hit])
    except BaseException:
        for writer in writers:
            writer.abort()
        raise
    for writer in writers:
        writer.close()
    return list(paths)


def open_stream_shards(
    path: Union[str, "os.PathLike[str]"],
    shards: Optional[int] = None,
    cache="none",
) -> List[DiskEdgeStream]:
    """Open the shard set written for *path*, cross-checking the headers.

    With *shards* the exact partition ``base.shard-*-of-shards.reb`` is
    opened; without it the count is discovered from the files next to
    *path*.  Opening fails loudly on an incomplete index set, on
    mixed shard counts, or on shards whose headers disagree on ``n``
    (shards of different streams can otherwise silently merge into
    garbage — the engine's config-echo checks would catch the seeds,
    not the data).  Returns the shard streams in index order.
    """
    base = os.fspath(path)
    if shards is None:
        directory = os.path.dirname(base) or "."
        prefix = os.path.basename(shard_path(base, 0, 1)).rsplit("0-of-1.reb", 1)[0]
        counts = set()
        for name in os.listdir(directory):
            match = _SHARD_NAME.search(name)
            if match and name.startswith(prefix):
                counts.add(int(match.group(2)))
        if not counts:
            raise StreamError(f"no shard files found next to {base!r}")
        if len(counts) > 1:
            raise StreamError(
                f"mixed shard counts {sorted(counts)} next to {base!r}; "
                "pass shards= explicitly or remove the stale partition"
            )
        shards = counts.pop()
    missing = [
        shard_path(base, index, shards)
        for index in range(shards)
        if not os.path.exists(shard_path(base, index, shards))
    ]
    if missing:
        raise StreamError(
            f"shard set for {base!r} is incomplete: missing {missing}"
        )
    streams = [
        DiskEdgeStream(shard_path(base, index, shards), cache=cache)
        for index in range(shards)
    ]
    n = streams[0].n
    for index, stream in enumerate(streams):
        if stream.n != n:
            raise StreamError(
                f"shard {index} of {base!r} has n={stream.n} but shard 0 has "
                f"n={n}; the files are not shards of one stream"
            )
    return streams


class ShardView(CachedBatchStream):
    """One shard of a stream as a filtered, pass-counting view.

    The in-memory counterpart of a materialized shard file: rows whose
    :func:`shard_route` equals *index* are located once (a chunked scan
    storing row positions — O(length/shards) ``int64`` per view, so
    prefer ``repro convert --shards`` for graphs that must stay out of
    core) and decoded on demand from the base stream's columns.  A view
    over shard ``k`` of ``N`` is bit-identical, update for update, to
    the file :func:`write_stream_shards` writes for ``(k, N)``.
    """

    def __init__(self, base, index: int, shards: int, cache="none") -> None:
        if shards < 1:
            raise StreamError(f"shard count must be >= 1, got {shards}")
        if not 0 <= index < shards:
            raise StreamError(f"shard index {index} outside [0, {shards})")
        self._base = base
        self._index = int(index)
        self._shards = int(shards)
        self._passes = 0
        self._cache: BatchCachePolicy = resolve_cache_policy(cache)
        u, v, delta = _raw_columns(base)
        rows: List[np.ndarray] = []
        net = 0
        chunk = 1 << 20
        for start in range(0, len(u), chunk):
            stop = min(start + chunk, len(u))
            route = shard_route(u[start:stop], v[start:stop], shards)
            hit = np.flatnonzero(route == index)
            if len(hit):
                rows.append((hit + start).astype(np.int64))
                net += int(np.asarray(delta[start:stop])[hit].sum())
        self._rows = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        self._net = net

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def length(self) -> int:
        return len(self._rows)

    @property
    def net_edge_count(self) -> int:
        return self._net

    @property
    def allows_deletions(self) -> bool:
        return self._base.allows_deletions

    def updates(self) -> Iterator[Update]:
        self._passes += 1
        return self._iter_updates()

    def _iter_updates(self) -> Iterator[Update]:
        for start in range(0, len(self._rows), DEFAULT_CHUNK_SIZE):
            batch = self._decode_batch(start, min(start + DEFAULT_CHUNK_SIZE, len(self._rows)))
            for k in range(len(batch)):
                yield Update(int(batch.u[k]), int(batch.v[k]), int(batch.delta[k]))

    def _decode_batch(self, start: int, stop: int) -> EdgeBatch:
        rows = self._rows[start:stop]
        u, v, delta = _raw_columns(self._base)
        return EdgeBatch(
            np.asarray(u)[rows],
            np.asarray(v)[rows],
            np.asarray(delta)[rows],
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"ShardView(shard {self._index} of {self._shards}, n={self.n}, "
            f"length={self.length}, m={self._net})"
        )


def stream_shard_views(stream, shards: int, cache="none") -> List["ShardView"]:
    """All *shards* views of one stream, in index order."""
    return [ShardView(stream, index, shards, cache=cache) for index in range(shards)]
