"""Columnar edge batches: the unit of computation of the fast pipeline.

An :class:`EdgeBatch` holds one decoded chunk of a stream pass as
numpy columns — ``u``, ``v``, ``delta`` as ``int64`` arrays plus the
normalized endpoint columns ``lo``/``hi`` — instead of a list of
``(u, v, delta, edge)`` tuples.  It still *behaves* like that list
(``len``, iteration, indexing all yield decoded tuples), so every
scalar consumer keeps working unchanged, while vectorized consumers
read the columns directly and the engine ships batches across process
boundaries as flat array buffers instead of pickled tuple lists.

Derived representations are computed lazily and cached **on the
batch**: the decoded tuple list, the normalized edge-tuple list, the
per-``n`` dense edge ids, and the interleaved endpoint/other event
columns.  Because the stream caches its batches across passes
(:meth:`repro.streams.stream.EdgeStream.batches`), a representation is
materialized at most once per stream however many passes run and
however many estimator copies consume each pass — this cache sharing
is where the fused engine's per-copy decode cost goes to zero.

Caches never cross a process boundary: pickling reduces a batch to its
three defining columns.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamError
from repro.graph.graph import Edge

#: A decoded stream element: ``(u, v, delta, normalized_edge)``.
DecodedTuple = Tuple[int, int, int, Edge]

#: Bytes one stream element occupies in a packed column triple: the
#: three defining ``int64`` columns (``u``, ``v``, ``delta``) laid out
#: back to back — the unit the shared-memory batch ring is sized in.
PACKED_ELEMENT_BYTES = 24

#: Largest vertex count whose dense edge ids stay exact: for
#: ``n <= 2^32`` the id universe ``n(n-1)/2 < 2^63`` fits ``int64``
#: and the uint64 intermediate ``a(2n-a-1) <= n(n-1) < 2^64`` cannot
#: wrap.  Beyond that the encoding itself overflows — callers must
#: compact/relabel vertex ids first (the dataset readers do).
EDGE_ID_MAX_N = 1 << 32

#: Above this vertex count the pass states switch their vertex filters
#: from Θ(n) boolean gather tables to sorted binary search — a few
#: dozen watched vertices never justify gigabyte tables on big-id
#: disk graphs.
DENSE_MEMBERSHIP_MAX_N = 1 << 22


def edge_id(u: int, v: int, n: int) -> int:
    """Dense id of the (sorted) pair {u, v} in ``[0, n(n-1)/2)``.

    Pairs ``(a, b)`` with ``a < b`` ordered lexicographically — the
    single home of the encoding; :meth:`EdgeBatch.edge_ids` is its
    vectorized form and the turnstile oracle's ℓ0 edge universe and the
    pass states' adjacency lookups all key off it.
    """
    a, b = (u, v) if u < v else (v, u)
    return a * (2 * n - a - 1) // 2 + (b - a - 1)


def sorted_member_mask(sorted_values: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of *values* in the pre-sorted *sorted_values*.

    Equivalent to ``np.isin(values, sorted_values)`` but exploits that
    the haystack is already sorted and deduplicated (``np.isin``
    re-sorts it on every call): one binary search per element, no
    temporaries proportional to the haystack.
    """
    positions = np.searchsorted(sorted_values, values)
    mask = positions < len(sorted_values)
    mask[mask] = sorted_values[positions[mask]] == values[mask]
    return mask


class VertexMembership:
    """Vertex filter over a small watched set, scale-aware in ``n``.

    The columnar pass states test every batch event against a handful
    of watched vertices (degree counters, arrival watchers, sampler
    owners).  For ordinary ``n`` a dense boolean table makes that an
    O(1) gather per event; on huge-universe disk graphs
    (``n > DENSE_MEMBERSHIP_MAX_N``) allocating Θ(n) scratch per pass
    state would dwarf the algorithm's own space, so membership falls
    back to binary search against the sorted watched set — same mask,
    bounded memory.  :meth:`slots` gives each member a compact index
    so accumulators are sized by the watched set, never by ``n``.
    """

    __slots__ = ("vertices", "_table")

    def __init__(self, vertices, n: int) -> None:
        self.vertices = np.asarray(sorted(vertices), dtype=np.int64)
        if n <= DENSE_MEMBERSHIP_MAX_N:
            table = np.zeros(n, dtype=bool)
            table[self.vertices] = True
            self._table = table
        else:
            self._table = None

    def __len__(self) -> int:
        return len(self.vertices)

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean membership of *values* in the watched set."""
        if self._table is not None:
            return self._table[values]
        return sorted_member_mask(self.vertices, values)

    def slots(self, members: np.ndarray) -> np.ndarray:
        """Compact ``[0, len)`` indices of *members* (all must belong)."""
        return np.searchsorted(self.vertices, members)


class _EdgeView(Sequence):
    """Lazy indexable view of a batch's normalized edge tuples.

    The skip-ahead reservoir bank touches only the elements it
    accepts, so handing it this view instead of a materialized list
    keeps a no-acceptance batch at O(1) total work.  Once the batch's
    edge list is materialized the view serves from it directly.
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: "EdgeBatch") -> None:
        self._batch = batch

    def __len__(self) -> int:
        return len(self._batch)

    def __getitem__(self, index):
        batch = self._batch
        if batch._edge_list is not None:
            return batch._edge_list[index]
        return (int(batch.lo[index]), int(batch.hi[index]))

    def __iter__(self):
        return iter(self._batch.edge_list())


class EdgeBatch(Sequence):
    """One decoded chunk of a stream pass, stored as numpy columns.

    Constructed from parallel ``u``/``v``/``delta`` arrays (``int64``).
    Sequence access decodes to plain ``(u, v, delta, edge)`` tuples
    with Python ints, bit-compatible with the historical decoded
    chunks.
    """

    __slots__ = (
        "u",
        "v",
        "delta",
        "_lo",
        "_hi",
        "_tuples",
        "_edge_list",
        "_edge_ids_n",
        "_edge_ids",
        "_events",
    )

    def __init__(self, u: np.ndarray, v: np.ndarray, delta: np.ndarray) -> None:
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        self.delta = np.ascontiguousarray(delta, dtype=np.int64)
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None
        self._tuples: Optional[List[DecodedTuple]] = None
        self._edge_list: Optional[List[Edge]] = None
        self._edge_ids_n: int = -1
        self._edge_ids: Optional[np.ndarray] = None
        self._events: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    @classmethod
    def from_updates(cls, updates: Sequence) -> "EdgeBatch":
        """Decode a run of :class:`~repro.streams.stream.Update` objects."""
        u = np.fromiter((update.u for update in updates), dtype=np.int64, count=len(updates))
        v = np.fromiter((update.v for update in updates), dtype=np.int64, count=len(updates))
        delta = np.fromiter(
            (update.delta for update in updates), dtype=np.int64, count=len(updates)
        )
        return cls(u, v, delta)

    @classmethod
    def from_tuples(cls, decoded: Sequence[DecodedTuple]) -> "EdgeBatch":
        """Build from already-decoded ``(u, v, delta, edge)`` tuples."""
        u = np.fromiter((t[0] for t in decoded), dtype=np.int64, count=len(decoded))
        v = np.fromiter((t[1] for t in decoded), dtype=np.int64, count=len(decoded))
        delta = np.fromiter((t[2] for t in decoded), dtype=np.int64, count=len(decoded))
        return cls(u, v, delta)

    # -- sequence protocol (scalar-consumer compatibility) ---------------

    def __len__(self) -> int:
        return len(self.u)

    def __iter__(self) -> Iterator[DecodedTuple]:
        return iter(self.tuples())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EdgeBatch(self.u[index], self.v[index], self.delta[index])
        return self.tuples()[index]

    def __repr__(self) -> str:
        return f"EdgeBatch(length={len(self.u)})"

    # -- columnar accessors ----------------------------------------------

    @property
    def lo(self) -> np.ndarray:
        """Normalized smaller endpoint per element."""
        if self._lo is None:
            self._lo = np.minimum(self.u, self.v)
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """Normalized larger endpoint per element."""
        if self._hi is None:
            self._hi = np.maximum(self.u, self.v)
        return self._hi

    def tuples(self) -> List[DecodedTuple]:
        """The decoded ``(u, v, delta, edge)`` tuple list (cached).

        All values are plain Python ints (via ``tolist``), so tuples
        compare, hash, and pickle exactly like the historical decode.
        """
        if self._tuples is None:
            self._tuples = list(
                zip(self.u.tolist(), self.v.tolist(), self.delta.tolist(), self.edge_list())
            )
        return self._tuples

    def edge_list(self) -> List[Edge]:
        """The normalized ``(lo, hi)`` edge-tuple list (cached)."""
        if self._edge_list is None:
            self._edge_list = list(zip(self.lo.tolist(), self.hi.tolist()))
        return self._edge_list

    def edges_view(self) -> _EdgeView:
        """Lazy indexable view over :meth:`edge_list` (no materialization)."""
        return _EdgeView(self)

    @property
    def nbytes(self) -> int:
        """Bytes of the defining columns (what the cache budgets meter).

        Lazily materialized views (tuples, edge lists, events) are
        extra and are released together with the batch object — the
        cache policies evict whole batches, so bounding the column
        bytes bounds the views too.
        """
        return self.u.nbytes + self.v.nbytes + self.delta.nbytes

    def edge_ids(self, n: int) -> np.ndarray:
        """Dense triangular edge ids in ``[0, n(n-1)/2)``, cached per *n*.

        The vectorized form of :func:`edge_id`:
        ``a(2n - a - 1)/2 + (b - a - 1)`` for the normalized pair
        ``a < b``, computed in ``uint64`` so the intermediate product
        stays exact up to ``n = 2^32`` (an ``int64`` product silently
        wraps past ``n ≈ 3.0e9``); the ids themselves fit ``int64``
        for every such ``n``.  Larger universes have no exact dense
        encoding and raise — compact the vertex ids first.
        """
        if self._edge_ids is None or self._edge_ids_n != n:
            if n > EDGE_ID_MAX_N:
                raise StreamError(
                    f"dense edge ids overflow for n={n} (> 2^32); "
                    "compact/relabel vertex ids first (see repro.streams.datasets)"
                )
            a = self.lo.astype(np.uint64)
            b = self.hi.astype(np.uint64)
            two_n = np.uint64(2 * n)
            one = np.uint64(1)
            ids = a * (two_n - a - one) // np.uint64(2) + (b - a - one)
            self._edge_ids = ids.astype(np.int64)
            self._edge_ids_n = n
        return self._edge_ids

    def events(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interleaved endpoint events ``(endpoint, other, element_index)``.

        Element i expands to two events in stream order — ``(u_i, v_i)``
        then ``(v_i, u_i)`` — which is exactly the order the scalar
        per-element trackers (degree counters, arrival watchers,
        neighbor reservoirs) visit endpoints.  Cached.
        """
        if self._events is None:
            length = len(self.u)
            endpoint = np.empty(2 * length, dtype=np.int64)
            endpoint[0::2] = self.u
            endpoint[1::2] = self.v
            other = np.empty(2 * length, dtype=np.int64)
            other[0::2] = self.v
            other[1::2] = self.u
            index = np.repeat(np.arange(length, dtype=np.int64), 2)
            self._events = (endpoint, other, index)
        return self._events

    # -- pickling (process-backend broadcast) ------------------------------

    def __reduce__(self):
        # Ship only the defining columns (flat buffers); caches are
        # per-process and rebuilt on demand.
        return (EdgeBatch, (self.u, self.v, self.delta))


# -- packed column transport (shared-memory broadcast) -------------------
#
# The parallel driver publishes a batch once by packing its columns
# into a flat int64 buffer of a fixed per-slot capacity; workers
# rebuild the batch from a view of the same buffer.  The layout is
# plain column concatenation at capacity-sized strides:
#
#     [ u[0:cap] | v[0:cap] | delta[0:cap] ]
#
# so a slot holds exactly ``capacity * PACKED_ELEMENT_BYTES`` bytes and
# a shorter batch simply leaves each column's tail unused.


def pack_columns(batch: "EdgeBatch", view: np.ndarray, capacity: int) -> int:
    """Write *batch*'s columns into the flat ``int64`` *view*; returns length.

    *view* must hold at least ``3 * capacity`` int64 slots.  Only the
    first ``len(batch)`` entries of each column stride are written —
    the reader passes the length alongside the buffer reference.
    """
    length = len(batch)
    if length > capacity:
        raise StreamError(
            f"batch of {length} elements exceeds the packed slot capacity "
            f"{capacity}"
        )
    view[0:length] = batch.u
    view[capacity:capacity + length] = batch.v
    view[2 * capacity:2 * capacity + length] = batch.delta
    return length


def unpack_columns(
    view: np.ndarray, capacity: int, length: int, copy: bool = True
) -> "EdgeBatch":
    """Rebuild an :class:`EdgeBatch` from a buffer written by :func:`pack_columns`.

    With ``copy=True`` (the default, and what the shared-memory workers
    use) the columns are copied out of *view*, so the batch stays valid
    after the underlying slot is reused or unmapped.  ``copy=False``
    constructs zero-copy column views — only safe while the buffer is
    guaranteed to stay alive and unmodified.
    """
    u = view[0:length]
    v = view[capacity:capacity + length]
    delta = view[2 * capacity:2 * capacity + length]
    if copy:
        u, v, delta = u.copy(), v.copy(), delta.copy()
    return EdgeBatch(u, v, delta)
