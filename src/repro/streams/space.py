"""Word-level space accounting for streaming algorithms.

The paper's results are about *space*, so the experiment suite needs a
way to measure it that is independent of CPython object overheads.  A
:class:`SpaceMeter` counts abstract machine words: components charge
the meter for what they store (a counter = 1 word, an ℓ0-sampler =
its level count × recovery-sketch size, a stored vertex id = 1 word),
and the meter tracks the concurrent peak.

This deliberately measures the *algorithmic* space complexity — the
quantity Theorems 1/2/9/11 bound — not the Python process RSS.
"""

from __future__ import annotations

from typing import Dict


class SpaceMeter:
    """Tracks current and peak words across named components."""

    def __init__(self) -> None:
        self._current: Dict[str, int] = {}
        self._peak = 0

    def set_usage(self, component: str, words: int) -> None:
        """Set the current footprint of *component* to *words*."""
        if words < 0:
            raise ValueError(f"space cannot be negative, got {words}")
        self._current[component] = words
        self._peak = max(self._peak, self.current_words)

    def add_usage(self, component: str, words: int) -> None:
        """Increase *component*'s footprint by *words* (may be negative)."""
        updated = self._current.get(component, 0) + words
        self.set_usage(component, updated)

    def release(self, component: str) -> None:
        """Drop *component*'s footprint (end of its lifetime)."""
        self._current.pop(component, None)

    @property
    def current_words(self) -> int:
        """Total words currently held across all components."""
        return sum(self._current.values())

    @property
    def peak_words(self) -> int:
        """Maximum concurrent total ever observed."""
        return self._peak

    def breakdown(self) -> Dict[str, int]:
        """Snapshot of the current per-component footprints."""
        return dict(self._current)

    def state_dict(self) -> Dict[str, object]:
        """Current footprints plus the observed peak."""
        return {"current": dict(self._current), "peak": self._peak}

    def load_state_dict(self, state) -> None:
        """Restore a :meth:`state_dict` capture."""
        self._current = {str(k): int(v) for k, v in dict(state["current"]).items()}
        self._peak = int(state["peak"])

    def __repr__(self) -> str:
        return f"SpaceMeter(current={self.current_words}, peak={self.peak_words})"
