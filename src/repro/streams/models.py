"""Alternative stream models from §1.3 (other related work).

The paper's results are for the *arbitrary-order* model, and §1.3
contrasts them with two other models studied in the literature:

* the **random-order model** [MVV16; MV20] — the stream is a
  uniformly random permutation of the edges;
* the **adjacency-list model** [MVV16; Kal+19] — each edge appears
  twice, and the stream is grouped by endpoint: all of vertex v's
  incident pairs ``(v, u)`` arrive consecutively.

This module provides both models so the experiment suite can measure
how much the extra structure buys (experiment E11): algorithms in
these models reach triangle-counting trade-offs that arbitrary-order
algorithms provably cannot.

:class:`AdjacencyListStream` mirrors the :class:`~repro.streams.stream.EdgeStream`
pass-counting interface but yields :class:`ListItem` elements (owner,
neighbor) instead of edge updates, because the grouping *is* the
model: an adjacency-list algorithm is allowed to rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import StreamError
from repro.graph.graph import Graph
from repro.streams.stream import EdgeStream, Update
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def random_order_stream(graph: Graph, rng: RandomSource = None) -> EdgeStream:
    """An insertion-only stream in the random-order model.

    The arrival order is one uniformly random permutation of the
    edges, drawn once; every pass replays the same permutation (the
    standard multi-pass reading of the model).  Algorithms consuming
    this stream may rely on the order being uniform — that is the
    model's promise, not a property of the bits in the stream.
    """
    edges = list(graph.edges())
    ensure_rng(rng).shuffle(edges)
    return EdgeStream(graph.n, [Update(u, v) for u, v in edges])


@dataclass(frozen=True)
class ListItem:
    """One adjacency-list element: *neighbor* appears in *owner*'s list."""

    owner: int
    neighbor: int

    def __post_init__(self) -> None:
        if self.owner == self.neighbor:
            raise StreamError(f"self-loop list item ({self.owner}, {self.neighbor})")


class AdjacencyListStream:
    """A replayable, pass-counting stream in the adjacency-list model.

    The stream is the concatenation, over vertices v in some order, of
    v's incident pairs; each undirected edge {u, v} therefore appears
    exactly twice (once as ``(u, v)``, once as ``(v, u)``).  Vertex
    and within-list orders are fixed at construction (optionally
    shuffled) and replayed identically on every pass.
    """

    def __init__(self, n: int, items: Sequence[ListItem]) -> None:
        self._n = n
        self._items: Tuple[ListItem, ...] = tuple(items)
        self._passes = 0
        self._validate()

    def _validate(self) -> None:
        seen_owners: List[int] = []
        counts: dict = {}
        for index, item in enumerate(self._items):
            if not (0 <= item.owner < self._n and 0 <= item.neighbor < self._n):
                raise StreamError(f"item #{index} touches vertex outside [0, {self._n})")
            if not seen_owners or seen_owners[-1] != item.owner:
                if item.owner in seen_owners:
                    raise StreamError(
                        f"item #{index}: vertex {item.owner}'s list is not contiguous"
                    )
                seen_owners.append(item.owner)
            edge = (min(item.owner, item.neighbor), max(item.owner, item.neighbor))
            counts[edge] = counts.get(edge, 0) + 1
        for edge, count in counts.items():
            if count != 2:
                raise StreamError(
                    f"edge {edge} appears {count} time(s); the adjacency-list "
                    "model requires exactly two appearances"
                )
        self._edges: Tuple[Tuple[int, int], ...] = tuple(sorted(counts))

    @property
    def n(self) -> int:
        """Vertex count of the underlying graph."""
        return self._n

    @property
    def m(self) -> int:
        """Edge count of the underlying graph."""
        return len(self._edges)

    @property
    def length(self) -> int:
        """Number of stream elements (2m)."""
        return len(self._items)

    @property
    def passes_used(self) -> int:
        """How many passes have been read so far."""
        return self._passes

    def reset_pass_count(self) -> None:
        """Zero the pass counter (e.g. between estimator runs)."""
        self._passes = 0

    def items(self) -> Iterator[ListItem]:
        """Read one pass over the stream, counting it."""
        self._passes += 1
        return iter(self._items)

    def final_graph(self) -> Graph:
        """The graph the stream describes."""
        return Graph(self._n, self._edges)

    def as_edge_stream(self) -> EdgeStream:
        """First-appearance projection into the arbitrary-order model.

        Keeps each edge's first occurrence only, so arbitrary-order
        algorithms can run on the same input for comparison.
        """
        seen = set()
        updates: List[Update] = []
        for item in self._items:
            edge = (min(item.owner, item.neighbor), max(item.owner, item.neighbor))
            if edge not in seen:
                seen.add(edge)
                updates.append(Update(*edge))
        return EdgeStream(self._n, updates)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"AdjacencyListStream(n={self._n}, m={self.m}, "
            f"length={self.length}, passes_used={self._passes})"
        )


def adjacency_list_stream(
    graph: Graph,
    rng: RandomSource = None,
    shuffle_vertices: bool = True,
    shuffle_neighbors: bool = True,
) -> AdjacencyListStream:
    """Build an adjacency-list stream of *graph*.

    Vertex order and within-list neighbor orders are shuffled by
    default (the model fixes the grouping, not the orders); pass
    ``shuffle_vertices=False`` / ``shuffle_neighbors=False`` for
    sorted, deterministic layouts.
    """
    random_state = ensure_rng(rng)
    vertices = [v for v in range(graph.n) if graph.degree(v) > 0]
    if shuffle_vertices:
        random_state.shuffle(vertices)
    items: List[ListItem] = []
    for vertex in vertices:
        neighbors = sorted(graph.neighbors(vertex))
        if shuffle_neighbors:
            derive_rng(random_state, f"list-{vertex}").shuffle(neighbors)
        items.extend(ListItem(vertex, neighbor) for neighbor in neighbors)
    return AdjacencyListStream(graph.n, items)
