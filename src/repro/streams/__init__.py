"""Edge-stream substrate: update model, multi-pass streams, space meter."""

from repro.streams.batch import EdgeBatch, VertexMembership
from repro.streams.cache import (
    AllBatchCache,
    BatchCachePolicy,
    LRUBatchCache,
    NoBatchCache,
    parse_byte_size,
    resolve_cache_policy,
)
from repro.streams.datasets import (
    BinaryUpdateWriter,
    DiskEdgeStream,
    compact_ids,
    convert_edge_list,
    degree_adversarial_order,
    deletion_heavy_updates,
    is_stream_path,
    open_disk_stream,
    read_snap_chunks,
    save_npz_updates,
    sliding_window_updates,
    write_binary_updates,
)
from repro.streams.stream import (
    EdgeStream,
    Update,
    check_batch_size,
    insertion_stream,
    pass_batches,
    turnstile_stream,
)
from repro.streams.space import SpaceMeter
from repro.streams.generators import (
    adversarial_order_stream,
    stream_from_graph,
    turnstile_churn_stream,
    split_substreams,
)
from repro.streams.models import (
    AdjacencyListStream,
    ListItem,
    adjacency_list_stream,
    random_order_stream,
)

__all__ = [
    "EdgeBatch",
    "EdgeStream",
    "Update",
    "VertexMembership",
    "pass_batches",
    "check_batch_size",
    "insertion_stream",
    "turnstile_stream",
    "AllBatchCache",
    "BatchCachePolicy",
    "LRUBatchCache",
    "NoBatchCache",
    "parse_byte_size",
    "resolve_cache_policy",
    "BinaryUpdateWriter",
    "DiskEdgeStream",
    "compact_ids",
    "convert_edge_list",
    "degree_adversarial_order",
    "deletion_heavy_updates",
    "is_stream_path",
    "open_disk_stream",
    "read_snap_chunks",
    "save_npz_updates",
    "sliding_window_updates",
    "write_binary_updates",
    "SpaceMeter",
    "adversarial_order_stream",
    "stream_from_graph",
    "turnstile_churn_stream",
    "split_substreams",
    "AdjacencyListStream",
    "ListItem",
    "adjacency_list_stream",
    "random_order_stream",
]
