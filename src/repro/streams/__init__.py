"""Edge-stream substrate: update model, multi-pass streams, space meter."""

from repro.streams.batch import EdgeBatch
from repro.streams.stream import (
    EdgeStream,
    Update,
    insertion_stream,
    pass_batches,
    turnstile_stream,
)
from repro.streams.space import SpaceMeter
from repro.streams.generators import (
    adversarial_order_stream,
    stream_from_graph,
    turnstile_churn_stream,
    split_substreams,
)
from repro.streams.models import (
    AdjacencyListStream,
    ListItem,
    adjacency_list_stream,
    random_order_stream,
)

__all__ = [
    "EdgeBatch",
    "EdgeStream",
    "Update",
    "pass_batches",
    "insertion_stream",
    "turnstile_stream",
    "SpaceMeter",
    "adversarial_order_stream",
    "stream_from_graph",
    "turnstile_churn_stream",
    "split_substreams",
    "AdjacencyListStream",
    "ListItem",
    "adjacency_list_stream",
    "random_order_stream",
]
