"""Stream builders: orderings and turnstile workloads.

The algorithms are analyzed in the *arbitrary-order* model, so the
experiment suite exercises shuffled, sorted, degree-adversarial and
insert-delete-churn orders, plus the "split into substreams" scenario
the paper's introduction gives as the motivation for turnstile
algorithms (substreams that cannot be consolidated, e.g. for privacy).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import StreamError
from repro.graph.graph import Edge, Graph
from repro.streams.stream import EdgeStream, Update
from repro.utils.rng import RandomSource, ensure_rng


def stream_from_graph(
    graph: Graph, rng: RandomSource = None, order: str = "shuffled"
) -> EdgeStream:
    """Insertion-only stream of *graph* in a chosen arrival *order*.

    Orders: ``shuffled`` (random permutation), ``insertion`` (the
    graph's own edge order), ``sorted`` (lexicographic).
    """
    edges = list(graph.edges())
    if order == "shuffled":
        ensure_rng(rng).shuffle(edges)
    elif order == "sorted":
        edges.sort()
    elif order == "insertion":
        pass
    else:
        raise StreamError(f"unknown stream order {order!r}")
    return EdgeStream(graph.n, [Update(u, v) for u, v in edges])


def adversarial_order_stream(graph: Graph, hide_high_degree_last: bool = True) -> EdgeStream:
    """A degree-adversarial arrival order.

    Edges incident to high-degree vertices arrive last (or first),
    which stresses reservoir samplers and the f3 neighbor-index
    emulation: the i-th arrival-order neighbor differs maximally from
    the adjacency-list order.
    """
    def weight(edge: Edge) -> int:
        u, v = edge
        return max(graph.degree(u), graph.degree(v))

    edges = sorted(graph.edges(), key=weight, reverse=not hide_high_degree_last)
    return EdgeStream(graph.n, [Update(u, v) for u, v in edges])


def turnstile_churn_stream(
    final_graph: Graph,
    churn_edges: int,
    rng: RandomSource = None,
    interleave: bool = True,
) -> EdgeStream:
    """A turnstile stream whose final graph is *final_graph*.

    Inserts *churn_edges* extra edges (from the complement) and later
    deletes them.  With *interleave*, insertions/deletions of churn
    edges are mixed uniformly into the stream (subject to
    insert-before-delete); otherwise all churn is appended after the
    real edges and then retracted.
    """
    random_state = ensure_rng(rng)
    real_edges = list(final_graph.edges())

    complement: List[Edge] = []
    for edge in final_graph.complement_edges():
        complement.append(edge)
    if churn_edges > len(complement):
        raise StreamError(
            f"cannot churn {churn_edges} edges; complement has only {len(complement)}"
        )
    churn = random_state.sample(complement, churn_edges)

    if not interleave:
        updates = [Update(u, v, 1) for u, v in real_edges]
        updates += [Update(u, v, 1) for u, v in churn]
        updates += [Update(u, v, -1) for u, v in churn]
        return EdgeStream(final_graph.n, updates, allow_deletions=True)

    # Interleaved: assign each update a random timestamp, forcing each
    # churn deletion after its insertion by resampling order pairs.
    events: List[Tuple[float, Update]] = []
    for u, v in real_edges:
        events.append((random_state.random(), Update(u, v, 1)))
    for u, v in churn:
        a, b = random_state.random(), random_state.random()
        t_insert, t_delete = min(a, b), max(a, b)
        events.append((t_insert, Update(u, v, 1)))
        events.append((t_delete, Update(u, v, -1)))
    events.sort(key=lambda item: item[0])
    return EdgeStream(
        final_graph.n, [update for _, update in events], allow_deletions=True
    )


def split_substreams(
    stream: EdgeStream, parts: int, rng: RandomSource = None
) -> List[EdgeStream]:
    """Split a stream into *parts* interleaved substreams.

    Models the paper's privacy motivation: each element goes to one
    substream; the union of substreams is the original stream, but no
    single substream sees the whole graph.  Substreams preserve
    relative order, so each is itself a valid turnstile stream only if
    insertions and matching deletions land in the same part — we
    route by edge to guarantee that.
    """
    random_state = ensure_rng(rng)
    assignment = {}
    buckets: List[List[Update]] = [[] for _ in range(parts)]
    for update in stream.updates():
        edge = update.edge
        if edge not in assignment:
            assignment[edge] = random_state.randrange(parts)
        buckets[assignment[edge]].append(update)
    stream.reset_pass_count()
    return [
        EdgeStream(stream.n, bucket, allow_deletions=stream.allows_deletions)
        for bucket in buckets
    ]


def concatenate_streams(streams: Sequence[EdgeStream]) -> EdgeStream:
    """Concatenate substreams back into one stream (consolidation)."""
    if not streams:
        raise StreamError("cannot concatenate zero streams")
    n = streams[0].n
    updates: List[Update] = []
    allow_deletions = any(s.allows_deletions for s in streams)
    for sub in streams:
        if sub.n != n:
            raise StreamError("substreams disagree on vertex count")
        updates.extend(sub.updates())
        sub.reset_pass_count()
    return EdgeStream(n, updates, allow_deletions=allow_deletions)
