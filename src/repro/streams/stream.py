"""The arbitrary-order edge stream model.

An :class:`EdgeStream` is a finite sequence of edge *updates* over a
fixed vertex set [n].  In the insertion-only (cash-register) setting
every update inserts an edge; in the turnstile setting updates carry a
sign and the graph is the result of applying all of them to the empty
graph (final multiplicities must be 0 or 1 — the paper's model is
simple graphs).

Multi-pass algorithms call :meth:`EdgeStream.updates` once per pass;
the stream counts passes so tests and experiments can assert the pass
complexity claimed by the theorems (3 passes for Theorem 1/17, 5r for
Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamError
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.streams.batch import EdgeBatch
from repro.streams.cache import BatchCachePolicy, resolve_cache_policy
from repro.utils.rng import RandomSource, ensure_rng


#: Default elements per decoded chunk / columnar batch.
DEFAULT_CHUNK_SIZE = 4096


def check_batch_size(batch_size) -> int:
    """Validate a batch size: an integer >= 1 (``bool`` rejected).

    The single home of the check — :meth:`EdgeStream.batches`, the
    disk streams, and the engine all route through it, so a bad
    ``--batch-size`` fails with one clear :class:`ValueError` instead
    of a silent ``range`` misbehavior deep in the decode loop.
    """
    if isinstance(batch_size, bool) or not isinstance(batch_size, (int, np.integer)):
        raise StreamError(
            f"batch_size must be an int, got {type(batch_size).__name__} "
            f"({batch_size!r})"
        )
    if batch_size < 1:
        raise StreamError(f"batch_size must be >= 1, got {batch_size}")
    return int(batch_size)


class CachedBatchStream:
    """Shared pass-counting + batch-cache surface of the stream classes.

    Subclasses initialize ``self._passes = 0`` and ``self._cache``
    (via :func:`~repro.streams.cache.resolve_cache_policy`), implement
    ``__len__`` and :meth:`_decode_batch`, and inherit the whole
    consulting loop: one cache key per ``(batch_size, batch_index)``,
    decode on miss, retention at the policy's discretion.  Keeping the
    loop in one place is what guarantees the in-memory and disk
    streams can never drift apart on cache semantics.
    """

    @property
    def passes_used(self) -> int:
        """How many passes have been read so far."""
        return self._passes

    def reset_pass_count(self) -> None:
        """Zero the pass counter (e.g. between estimator runs)."""
        self._passes = 0

    @property
    def cache_policy(self) -> BatchCachePolicy:
        """The active batch-cache policy (inspect for hit/byte meters)."""
        return self._cache

    def set_cache_policy(self, cache) -> BatchCachePolicy:
        """Replace the batch-cache policy (dropping retained batches).

        *cache* is any spec accepted by
        :func:`~repro.streams.cache.resolve_cache_policy`; the resolved
        policy is returned so callers can meter it.
        """
        self._cache.clear()
        self._cache = resolve_cache_policy(cache)
        return self._cache

    def batches(self, batch_size: int = DEFAULT_CHUNK_SIZE) -> Iterator["EdgeBatch"]:
        """Read one pass as columnar :class:`~repro.streams.batch.EdgeBatch`\\ es.

        Counts a pass, like ``updates()``.  Which batches (and their
        lazily materialized decoded views) survive between passes is
        the cache policy's call (see :mod:`repro.streams.cache`):
        under ``"all"`` every batch is decoded once per stream and
        reused by every later pass and every estimator sharing a fused
        pass; under ``"lru"`` a bounded working set is; under
        ``"none"`` nothing is.  Batches are immutable by convention;
        consumers must not mutate the arrays.
        """
        batch_size = check_batch_size(batch_size)
        self._passes += 1
        return self._iter_batches(batch_size)

    def _iter_batches(self, batch_size: int) -> Iterator["EdgeBatch"]:
        cache = self._cache
        length = len(self)
        for index, start in enumerate(range(0, length, batch_size)):
            key = (batch_size, index)
            batch = cache.get(key)
            if batch is None:
                batch = self._decode_batch(start, min(start + batch_size, length))
                cache.put(key, batch)
            yield batch

    def _decode_batch(self, start: int, stop: int) -> "EdgeBatch":
        """Decode updates ``[start, stop)`` into a fresh batch."""
        raise NotImplementedError


@dataclass(frozen=True)
class Update:
    """A single stream element: edge {u, v} with sign +1 or -1."""

    u: int
    v: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise StreamError(f"self-loop update ({self.u}, {self.v})")
        if self.delta not in (1, -1):
            raise StreamError(f"update delta must be +1 or -1, got {self.delta}")

    @property
    def edge(self) -> Edge:
        """The normalized (min, max) edge."""
        return normalize_edge(self.u, self.v)

    @property
    def is_insertion(self) -> bool:
        return self.delta == 1


class EdgeStream(CachedBatchStream):
    """A replayable, pass-counting edge stream.

    Parameters
    ----------
    n:
        Number of vertices of the underlying graph.
    updates:
        The stream contents, in order.
    allow_deletions:
        ``False`` models the insertion-only setting and rejects any
        negative update at construction time.
    cache:
        Batch-cache policy for :meth:`batches` — ``"all"`` (default:
        unbounded, right for small replayed streams), ``"lru"`` /
        ``"lru:<bytes>"`` (bounded by a byte budget), ``"none"``, or a
        :class:`~repro.streams.cache.BatchCachePolicy` instance.
        Estimates are bit-identical across policies; the policy only
        trades decode work against resident memory.

    Notes
    -----
    The stream validates on construction that the final edge
    multiplicities are all 0 or 1 and never dip below 0 — i.e. that
    the updates describe a simple graph, as the paper's turnstile
    model requires.
    """

    def __init__(
        self,
        n: int,
        updates: Sequence[Update],
        allow_deletions: bool = False,
        cache=None,
    ) -> None:
        self._n = n
        self._updates: Tuple[Update, ...] = tuple(updates)
        self._allow_deletions = allow_deletions
        self._passes = 0
        self._cache: BatchCachePolicy = resolve_cache_policy(cache)
        self._columns = None
        self._validate()

    def _validate(self) -> None:
        multiplicity: Dict[Edge, int] = {}
        for index, update in enumerate(self._updates):
            if not (0 <= update.u < self._n and 0 <= update.v < self._n):
                raise StreamError(f"update #{index} touches vertex outside [0, {self._n})")
            if update.delta < 0 and not self._allow_deletions:
                raise StreamError(f"update #{index} is a deletion in an insertion-only stream")
            edge = update.edge
            count = multiplicity.get(edge, 0) + update.delta
            if count < 0:
                raise StreamError(f"update #{index} deletes absent edge {edge}")
            if count > 1:
                raise StreamError(f"update #{index} duplicates edge {edge}")
            multiplicity[edge] = count
        self._final_edges: Tuple[Edge, ...] = tuple(
            sorted(edge for edge, count in multiplicity.items() if count == 1)
        )

    # -- stream interface ------------------------------------------------

    @property
    def n(self) -> int:
        """Vertex count of the underlying graph."""
        return self._n

    @property
    def length(self) -> int:
        """Number of stream elements (insertions + deletions)."""
        return len(self._updates)

    @property
    def net_edge_count(self) -> int:
        """m: edges of the final graph."""
        return len(self._final_edges)

    @property
    def allows_deletions(self) -> bool:
        return self._allow_deletions

    def updates(self) -> Iterator[Update]:
        """Read one pass over the stream, counting it."""
        self._passes += 1
        return iter(self._updates)

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole stream as ``(u, v, delta)`` ``int64`` columns.

        Decoded once and shared with the batch pipeline; does **not**
        count a pass.  The public bridge to the array-based ingestion
        layer (:func:`repro.streams.datasets.write_binary_updates`, the
        scenario generators) — callers must not mutate the arrays.
        """
        if self._columns is None:
            length = len(self._updates)
            self._columns = tuple(
                np.fromiter(
                    (getattr(update, field) for update in self._updates),
                    dtype=np.int64,
                    count=length,
                )
                for field in ("u", "v", "delta")
            )
        return self._columns

    def _decode_batch(self, start: int, stop: int) -> "EdgeBatch":
        u, v, delta = self.columns()
        return EdgeBatch(u[start:stop], v[start:stop], delta[start:stop])

    def final_graph(self) -> Graph:
        """The graph the stream describes (updates applied in order)."""
        return Graph(self._n, self._final_edges)

    def __len__(self) -> int:
        return len(self._updates)

    def __repr__(self) -> str:
        kind = "turnstile" if self._allow_deletions else "insertion-only"
        return (
            f"EdgeStream({kind}, n={self._n}, length={self.length}, "
            f"m={self.net_edge_count}, passes_used={self._passes})"
        )


class ColumnEdgeStream(CachedBatchStream):
    """A replayable stream over pre-decoded ``(u, v, delta)`` columns.

    The array-native sibling of :class:`EdgeStream`: same protocol
    (metadata, ``updates()``, ``batches()``, pass counting, cache
    policy), but the contents live as three numpy columns instead of
    :class:`Update` objects — no per-element dataclass cost to build,
    and ``_decode_batch`` is a pure slice.  Used by the live engine
    (:mod:`repro.engine.live`) to replay its journaled prefix through
    the multi-pass estimators, and handy anywhere updates already
    exist as arrays (scenario generators, ``.npz`` round trips).

    ``net_edge_count`` may be passed by callers that already validated
    the stream (the live journal validates incrementally); with
    ``validate=True`` the columns are checked against the simple-graph
    stream model exactly as :class:`EdgeStream` checks updates.
    """

    def __init__(
        self,
        n: int,
        u,
        v,
        delta=None,
        allow_deletions: Optional[bool] = None,
        net_edge_count: Optional[int] = None,
        validate: bool = True,
        cache=None,
    ) -> None:
        if n < 1:
            raise StreamError(f"column stream needs n >= 1, got {n}")
        self._n = int(n)
        self._u = np.ascontiguousarray(u, dtype=np.int64)
        self._v = np.ascontiguousarray(v, dtype=np.int64)
        if delta is None:
            delta = np.ones(len(self._u), dtype=np.int64)
        self._delta = np.ascontiguousarray(delta, dtype=np.int64)
        if not (len(self._u) == len(self._v) == len(self._delta)):
            raise StreamError("u/v/delta column lengths differ")
        if allow_deletions is None:
            allow_deletions = bool(len(self._delta)) and bool((self._delta < 0).any())
        self._allow_deletions = bool(allow_deletions)
        self._passes = 0
        self._cache: BatchCachePolicy = resolve_cache_policy(cache)
        if validate:
            self._final_edges: Optional[Tuple[Edge, ...]] = self._validate()
            self._net = len(self._final_edges)
        else:
            self._final_edges = None
            self._net = (
                int(net_edge_count)
                if net_edge_count is not None
                else int(self._delta.sum())
            )

    def _validate(self) -> Tuple[Edge, ...]:
        multiplicity: Dict[Edge, int] = {}
        for index, (u, v, delta) in enumerate(
            zip(self._u.tolist(), self._v.tolist(), self._delta.tolist())
        ):
            if u == v:
                raise StreamError(f"update #{index} is a self-loop ({u}, {v})")
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise StreamError(
                    f"update #{index} touches vertex outside [0, {self._n})"
                )
            if delta not in (1, -1):
                raise StreamError(
                    f"update #{index} delta must be +1 or -1, got {delta}"
                )
            if delta < 0 and not self._allow_deletions:
                raise StreamError(
                    f"update #{index} is a deletion in an insertion-only stream"
                )
            edge = normalize_edge(u, v)
            count = multiplicity.get(edge, 0) + delta
            if count < 0:
                raise StreamError(f"update #{index} deletes absent edge {edge}")
            if count > 1:
                raise StreamError(f"update #{index} duplicates edge {edge}")
            multiplicity[edge] = count
        return tuple(sorted(e for e, count in multiplicity.items() if count == 1))

    @property
    def n(self) -> int:
        return self._n

    @property
    def length(self) -> int:
        return len(self._u)

    @property
    def net_edge_count(self) -> int:
        return self._net

    @property
    def allows_deletions(self) -> bool:
        return self._allow_deletions

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The backing ``(u, v, delta)`` columns (do not mutate)."""
        return self._u, self._v, self._delta

    def updates(self) -> Iterator[Update]:
        """Read one pass as :class:`Update` objects (scalar reference path)."""
        self._passes += 1

        def generate() -> Iterator[Update]:
            for u, v, delta in zip(
                self._u.tolist(), self._v.tolist(), self._delta.tolist()
            ):
                yield Update(u, v, delta)

        return generate()

    def _decode_batch(self, start: int, stop: int) -> "EdgeBatch":
        return EdgeBatch(
            self._u[start:stop], self._v[start:stop], self._delta[start:stop]
        )

    def final_graph(self) -> Graph:
        """The graph the columns describe (computed on demand)."""
        if self._final_edges is None:
            self._final_edges = self._validate()
        return Graph(self._n, self._final_edges)

    def __len__(self) -> int:
        return len(self._u)

    def __repr__(self) -> str:
        kind = "turnstile" if self._allow_deletions else "insertion-only"
        return (
            f"ColumnEdgeStream({kind}, n={self._n}, length={self.length}, "
            f"m={self._net}, passes_used={self._passes})"
        )


#: A decoded stream element: ``(u, v, delta, normalized_edge)``.
DecodedUpdate = Tuple[int, int, int, Edge]


def decoded_chunks(
    updates: Iterable[Update], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[List[DecodedUpdate]]:
    """Decode :class:`Update` objects into bounded chunks of plain tuples.

    The shared feeding loop of every pass consumer (the stream oracles'
    ``answer_batch``, the baseline one-shot wrappers, and the fused
    engine): each ``Update`` is unpacked once into ``(u, v, delta,
    edge)`` so downstream loops avoid the dataclass attribute/property
    cost, and peak memory stays O(chunk_size) however long the pass is.
    """
    chunk_size = check_batch_size(chunk_size)
    batch: List[DecodedUpdate] = []
    append = batch.append
    for update in updates:
        append((update.u, update.v, update.delta, update.edge))
        if len(batch) >= chunk_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def pass_batches(
    stream, batch_size: int = DEFAULT_CHUNK_SIZE, columnar: bool = True
):
    """One stream pass as dispatchable batches (counting the pass).

    The single entry point behind every pass consumer — the engine's
    dispatch loop, the parallel driver's broadcast loop, and the
    oracles' one-shot ``answer_batch``.  With *columnar* (the default)
    and a stream exposing :meth:`EdgeStream.batches`, the pass yields
    cached :class:`~repro.streams.batch.EdgeBatch` columns; otherwise
    it falls back to the scalar tuple decode of :func:`decoded_chunks`
    — the reference path the bit-equality tests compare against.
    """
    if columnar and hasattr(stream, "batches"):
        return stream.batches(batch_size)
    return decoded_chunks(stream.updates(), batch_size)


def insertion_stream(
    graph: Graph, rng: RandomSource = None, shuffle: bool = True
) -> EdgeStream:
    """An insertion-only stream of *graph*'s edges.

    With *shuffle* (the default) the arrival order is a uniformly
    random permutation drawn from *rng*; otherwise edges arrive in the
    graph's insertion order.  Note the algorithms are analyzed for
    arbitrary (adversarial) order — shuffling is just a convenient
    instance, and :func:`repro.streams.generators.adversarial_order_stream`
    provides nastier ones.
    """
    edges: List[Edge] = list(graph.edges())
    if shuffle:
        ensure_rng(rng).shuffle(edges)
    return EdgeStream(graph.n, [Update(u, v, 1) for u, v in edges], allow_deletions=False)


def turnstile_stream(
    n: int, updates: Iterable[Tuple[int, int, int]]
) -> EdgeStream:
    """A turnstile stream from raw ``(u, v, delta)`` triples."""
    return EdgeStream(n, [Update(u, v, d) for u, v, d in updates], allow_deletions=True)
