"""A1 — ablation: why SampleWedge needs both degree branches.

The FGP cycle completion (Algorithm 6) closes a sampled path through
either (a) an indexed-neighbor draw when the cycle's ≺-minimum vertex
has degree <= √(2m), or (b) a degree-proportional vertex sample thinned
by √(2m)/deg when it is heavier.  Disabling either branch silently
drops every triangle whose minimum-degree vertex lies on the other
side of the √(2m) threshold.

The workload is a lollipop graph (a K_k head plus a path tail) sized
so triangles' minimum vertices straddle the threshold, plus the karate
club (all-low-degree: the high branch is never needed).  Columns show
the estimate each variant produces: only "both" tracks the truth on
the straddling workload.
"""

from __future__ import annotations

from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.fgp.rounds import (
    WEDGE_BOTH,
    WEDGE_HIGH_ONLY,
    WEDGE_LOW_ONLY,
    SamplerMode,
    subgraph_sampler_rounds,
)
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streams.stream import insertion_stream
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.graph.graph import Graph
from repro.utils.rng import derive_rng, ensure_rng


def pendant_clique_graph(hubs: int, pendants: int) -> Graph:
    """K_hubs with *pendants* degree-1 leaves hanging off each hub.

    Hub degree is hubs-1+pendants while √(2m) = √(hubs(hubs-1) +
    2·hubs·pendants); whenever (pendants-1)² > hubs, every hub is
    heavier than √(2m).  All triangles are hub-only, so *every*
    triangle's cycle completion must go through the high-degree branch
    of SampleWedge: disabling it (low_only) collapses the estimate to
    zero, while disabling the low branch leaves this workload intact —
    the exact opposite of the karate row.
    """
    graph = Graph(hubs * (1 + pendants))
    for a in range(hubs):
        for b in range(a + 1, hubs):
            graph.add_edge(a, b)
    next_leaf = hubs
    for hub in range(hubs):
        for _ in range(pendants):
            graph.add_edge(hub, next_leaf)
            next_leaf += 1
    return graph


def _estimate(graph, pattern, branches, attempts, rng):
    stream = insertion_stream(graph, derive_rng(rng, f"s-{branches}"))
    oracle = InsertionStreamOracle(stream, derive_rng(rng, f"o-{branches}"))
    generators = [
        subgraph_sampler_rounds(
            pattern,
            rng=derive_rng(rng, i),
            mode=SamplerMode.AUGMENTED,
            wedge_branches=branches,
        )
        for i in range(attempts)
    ]
    outputs = run_round_adaptive(generators, oracle).outputs
    successes = sum(1 for output in outputs if output is not None)
    return (successes / attempts) * (2.0 * graph.m) ** pattern.rho()


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the A1 table."""
    rng = ensure_rng(seed)
    pattern = pattern_zoo.triangle()
    attempts = 12000 if fast else 50000
    # K9 + tail: sqrt(2m) ~ 9.4, clique degrees ~8 (low) but the
    # planted hub edges push some triangle minima above the threshold.
    cases = [
        ("karate (all low-degree)", gen.karate_club()),
        ("pendant-clique(16,6) (all high)", pendant_clique_graph(16, 6)),
        ("gnp(40,0.35) (mixed)", gen.gnp(40, 0.35, seed + 31)),
    ]
    table = Table(
        "A1: SampleWedge branch ablation (triangles; estimates per variant)",
        ["graph", "m", "sqrt(2m)", "#T", "both", "low_only", "high_only", "both_err"],
    )
    for name, graph in cases:
        truth = count_subgraphs(graph, pattern)
        if truth == 0:
            continue
        estimates = {
            branches: _estimate(graph, pattern, branches, attempts, derive_rng(rng, name + branches))
            for branches in (WEDGE_BOTH, WEDGE_LOW_ONLY, WEDGE_HIGH_ONLY)
        }
        table.add_row(
            name,
            graph.m,
            (2.0 * graph.m) ** 0.5,
            truth,
            estimates[WEDGE_BOTH],
            estimates[WEDGE_LOW_ONLY],
            estimates[WEDGE_HIGH_ONLY],
            abs(estimates[WEDGE_BOTH] - truth) / truth,
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
