"""E6 — Theorem 2: the 5r-pass ERS clique counter on low-degeneracy
graphs.

For each low-degeneracy workload and r ∈ {3, 4}: exact #K_r, the ERS
streaming estimate, relative error, the pass count (must be <= 5r),
and the query volume against the mλ^{r-2}/#K_r space scale the
theorem promises (column ``queries/scale``; flat-ish is the win — the
budget the algorithm actually consumed tracks the theorem's bound, not
the worst-case m^{r/2} bound of general-graph algorithms).
"""

from __future__ import annotations

from repro.exact.cliques import count_cliques
from repro.experiments.tables import Table
from repro.experiments.workloads import low_degeneracy_workloads
from repro.graph.degeneracy import degeneracy
from repro.streaming.ers.counter import count_cliques_stream
from repro.streaming.ers.params import ErsParameters
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E6 table."""
    rng = ensure_rng(seed)
    table = Table(
        "E6: ERS streaming clique counter on low-degeneracy graphs  (Theorem 2)",
        [
            "graph",
            "r",
            "n",
            "m",
            "lambda",
            "#Kr",
            "estimate",
            "rel_err",
            "passes",
            "pass_budget(5r)",
            "queries",
            "m*lam^(r-2)/#Kr",
        ],
    )
    workloads = low_degeneracy_workloads()[: 3 if fast else 4]
    orders = [3] if fast else [3, 4]
    for workload in workloads:
        graph = workload.graph(seed)
        lam = degeneracy(graph)
        for r in orders:
            truth = count_cliques(graph, r)
            if truth == 0:
                continue
            stream = insertion_stream(graph, rng.getrandbits(48))
            params = ErsParameters(
                r=r,
                degeneracy_bound=lam,
                epsilon=0.25,
                outer_repetitions=5 if fast else 9,
                sample_cap=3000 if fast else 8000,
            )
            result = count_cliques_stream(
                stream,
                r=r,
                degeneracy_bound=lam,
                lower_bound=truth,
                params=params,
                rng=rng.getrandbits(48),
            )
            scale = graph.m * lam ** (r - 2) / truth
            table.add_row(
                workload.name,
                r,
                graph.n,
                graph.m,
                lam,
                truth,
                result.estimate,
                result.error_vs(truth),
                result.passes,
                5 * r,
                result.details["queries"],
                scale,
            )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
