"""E7 — the related-work landscape (§1): baselines vs the 3-pass
counter on one triangle workload.

One graph, one #T; every algorithm reports estimate, error, passes and
accounted space.  The qualitative shape to verify against §1's
discussion:

* exact is 1 pass but O(m) space;
* 1-pass sketches (hom-sketch) pay the (m³/(#T)²)-type variance —
  visibly noisier at comparable space;
* sampling baselines (TRIEST, Doulion) trade space for error smoothly;
* multi-pass algorithms (MVV, FGP 3-pass) hit good accuracy at
  m^{3/2}/#T-type budgets.
"""

from __future__ import annotations

from repro.baselines.cycle_sketch import sketch_count_triangles
from repro.baselines.doulion import doulion_count
from repro.baselines.exact_stream import exact_stream_count
from repro.baselines.mvv import mvv_triangle_count
from repro.baselines.mvv_two_pass import mvv_two_pass_triangle_count
from repro.baselines.triest import triest_count
from repro.exact.triangles import count_triangles
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E7 table."""
    rng = ensure_rng(seed)
    graph = gen.power_law_cluster(300 if fast else 800, 5, 0.5, seed + 7)
    truth = count_triangles(graph)
    pattern = pattern_zoo.triangle()

    def fresh_stream():
        return insertion_stream(graph, rng.getrandbits(48))

    table = Table(
        f"E7: triangle-counting landscape on plc graph (n={graph.n}, m={graph.m}, #T={truth})",
        ["algorithm", "estimate", "rel_err", "passes", "space_words", "trials"],
    )

    results = [
        exact_stream_count(fresh_stream(), pattern),
        triest_count(fresh_stream(), capacity=max(50, graph.m // 8), rng=rng.getrandbits(48)),
        doulion_count(fresh_stream(), 0.3, rng=rng.getrandbits(48)),
        mvv_triangle_count(
            fresh_stream(),
            trials=1500 if fast else 6000,
            rng=rng.getrandbits(48),
            degree_oracle=graph.degree,
        ),
        mvv_triangle_count(
            fresh_stream(), trials=1500 if fast else 6000, rng=rng.getrandbits(48)
        ),
        mvv_two_pass_triangle_count(
            fresh_stream(), sample_probability=0.2, rng=rng.getrandbits(48)
        ),
        sketch_count_triangles(
            fresh_stream(), sketches=48 if fast else 128, rng=rng.getrandbits(48)
        ),
        count_subgraphs_insertion_only(
            fresh_stream(),
            pattern,
            trials=4000 if fast else 20000,
            rng=rng.getrandbits(48),
        ),
    ]
    for result in results:
        table.add_row(
            result.algorithm,
            result.estimate,
            result.error_vs(truth),
            result.passes,
            result.space_words,
            result.trials,
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
