"""E9 — §1 motivation: degeneracy of natural graph families and the
ERS-vs-general space crossover.

Part 1: λ across generator families (preferential attachment, planar
grids, power-law-cluster, small-world rings, random geometric graphs,
planted partitions, G(n,p), random regular) — the natural families
are low-degeneracy, exactly the class Theorem 2 exploits.

Part 2: for triangle counting (r = 3), the space scales
m·λ^{r-2}/#K_r (Theorem 2) vs m^{r/2}/#K_r (general-graph algorithms,
e.g. Theorem 1): the ratio λ/√m quantifies when the degeneracy
algorithm wins — it does whenever λ << √m, which holds for every
natural family swept here and fails only for dense G(n,p).
"""

from __future__ import annotations

import math

from repro.exact.triangles import count_triangles
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E9 table."""
    rng = ensure_rng(seed)
    scale = 1 if fast else 3
    families = [
        ("ba(n=300,5)", gen.barabasi_albert(300 * scale, 5, rng.getrandbits(48))),
        ("plc(n=300,4,0.6)", gen.power_law_cluster(300 * scale, 4, 0.6, rng.getrandbits(48))),
        ("grid(20x15)", gen.grid_graph(20 * scale, 15)),
        ("regular(n=200,d=6)", gen.random_regular(200 * scale, 6, rng.getrandbits(48))),
        ("ws(n=300,k=6,0.1)", gen.watts_strogatz(300 * scale, 6, 0.1, rng.getrandbits(48))),
        ("rgg(n=300,r=0.1)", gen.random_geometric(300 * scale, 0.1, rng.getrandbits(48))),
        ("sbm(8x12,0.6,0.02)", gen.planted_partition(8 * scale, 12, 0.6, 0.02, rng.getrandbits(48))),
        ("gnp(n=120,p=0.15)", gen.gnp(120 * scale, 0.15, rng.getrandbits(48))),
        ("gnp(n=120,p=0.5)", gen.gnp(120, 0.5, rng.getrandbits(48))),
    ]
    table = Table(
        "E9: degeneracy across graph families and the lambda-vs-sqrt(m) crossover",
        [
            "family",
            "n",
            "m",
            "lambda",
            "sqrt(m)",
            "lambda/sqrt(m)",
            "#T",
            "ers_scale m*lam/#T",
            "general_scale m^1.5/#T",
            "ers_wins",
        ],
    )
    for name, graph in families:
        lam = degeneracy(graph)
        triangles = count_triangles(graph)
        sqrt_m = math.sqrt(graph.m)
        ers_scale = graph.m * lam / triangles if triangles else float("inf")
        general_scale = graph.m**1.5 / triangles if triangles else float("inf")
        table.add_row(
            name,
            graph.n,
            graph.m,
            lam,
            sqrt_m,
            lam / sqrt_m,
            triangles,
            ers_scale,
            general_scale,
            "yes" if lam < sqrt_m else "no",
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
