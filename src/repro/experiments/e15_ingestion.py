"""E15: out-of-core ingestion — cache policies on a disk-backed stream.

Writes a shuffled insertion stream to a binary tmpfile, replays it
through the fused engine under each batch-cache policy, and records
estimate equality against the in-memory run plus the policies' meters
(peak resident column bytes, hit/miss counts).  The contract the table
makes visible: **estimates are bit-identical however the stream is
stored and whatever the cache retains** — the policies trade only
decode work against resident memory, and the LRU row's peak must sit
under its configured budget.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.datasets import DiskEdgeStream, write_binary_updates
from repro.streams.stream import insertion_stream


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Build the E15 table (see module docstring)."""
    n = 300 if fast else 1500
    copies = 4 if fast else 16
    trials = 250 if fast else 800
    batch_size = 256 if fast else 4096
    budget = (16 << 10) if fast else (1 << 20)

    graph = gen.power_law_cluster(n, 5, 0.8, seed)
    pattern = zoo.triangle()
    table = Table(
        f"E15: in-memory vs disk ingestion (mirror, K={copies}, "
        f"trials/copy={trials}, m={graph.m}, lru budget={budget} B)",
        ["source", "cache", "estimate", "== memory", "peak bytes", "hits", "misses",
         "seconds"],
    )

    def fused_count(stream):
        start = time.perf_counter()
        result = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials,
            rng=seed + 2,
            mode=FusionMode.MIRROR,
            batch_size=batch_size,
        )
        return result, time.perf_counter() - start

    memory_stream = insertion_stream(graph, rng=seed + 1)
    u, v, _ = memory_stream.columns()
    reference, seconds = fused_count(memory_stream)
    policy = memory_stream.cache_policy
    table.add_row(
        "memory", policy.name, reference.estimate, True,
        policy.peak_resident_bytes, policy.hits, policy.misses, seconds,
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = write_binary_updates(os.path.join(tmp, "e15.reb"), graph.n, u, v)
        for cache in ("none", f"lru:{budget}", "all"):
            stream = DiskEdgeStream(path, cache=cache)
            result, seconds = fused_count(stream)
            policy = stream.cache_policy
            table.add_row(
                "disk", cache, result.estimate,
                result.estimates == reference.estimates,
                policy.peak_resident_bytes, policy.hits, policy.misses, seconds,
            )
    return table
