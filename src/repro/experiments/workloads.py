"""Shared experiment workloads.

Central definitions so E1-E10 sweep consistent graph families and the
tables in EXPERIMENTS.md are regenerable from one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.graph import generators as gen
from repro.graph.graph import Graph


@dataclass(frozen=True)
class Workload:
    """A named graph instance factory (deterministic given the seed)."""

    name: str
    build: Callable[[int], Graph]

    def graph(self, seed: int = 0) -> Graph:
        return self.build(seed)


def small_workloads() -> List[Workload]:
    """Small graphs where exact per-copy statistics are computable (E1)."""
    return [
        Workload("karate", lambda seed: gen.karate_club()),
        Workload("lollipop(6,5)", lambda seed: gen.lollipop_graph(6, 5)),
        Workload("gnp(14,0.5)", lambda seed: gen.gnp(14, 0.5, seed + 101)),
        Workload("grid(4x5)", lambda seed: gen.grid_graph(4, 5)),
    ]


def medium_workloads() -> List[Workload]:
    """Streams big enough to exercise the estimators (E2/E3/E7)."""
    return [
        Workload("gnp(60,0.25)", lambda seed: gen.gnp(60, 0.25, seed + 301)),
        Workload("ba(400,5)", lambda seed: gen.barabasi_albert(400, 5, seed + 302)),
        Workload(
            "plc(400,4,0.5)",
            lambda seed: gen.power_law_cluster(400, 4, 0.5, seed + 303),
        ),
    ]


def low_degeneracy_workloads() -> List[Workload]:
    """Low-degeneracy families for Theorem 2 experiments (E6/E9)."""
    return [
        Workload("ba(300,4)", lambda seed: gen.barabasi_albert(300, 4, seed + 401)),
        Workload("plc(300,5,0.6)", lambda seed: gen.power_law_cluster(300, 5, 0.6, seed + 402)),
        Workload("grid(18x18)", lambda seed: gen.grid_graph(18, 18)),
        Workload(
            "planted-K5+noise",
            lambda seed: gen.planted_cliques(260, 5, 36, noise_edges=420, rng=seed + 403),
        ),
    ]
