"""E4 — Theorems 9/11: transformation fidelity.

Runs the *same* round-adaptive FGP algorithm against three oracles —
the direct query model, the insertion-only stream emulation, and the
turnstile stream emulation — and compares:

* success probabilities (same output distribution up to the relaxed
  model's 1/n^c slack);
* pass counts: exactly 3 (= the algorithm's round-adaptivity);
* queries asked and the O(q log n) / O(q log^4 n) space accounting.
"""

from __future__ import annotations

from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.graph import generators as gen
from repro.oracle.direct import DirectAugmentedOracle, DirectRelaxedOracle
from repro.patterns import pattern as pattern_zoo
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import insertion_stream
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle
from repro.utils.rng import derive_rng, ensure_rng


def _success_rate(oracle, pattern, mode, attempts, rng):
    generators = [
        subgraph_sampler_rounds(pattern, rng=derive_rng(rng, i), mode=mode)
        for i in range(attempts)
    ]
    run_result = run_round_adaptive(generators, oracle)
    successes = sum(1 for output in run_result.outputs if output is not None)
    return successes / attempts, run_result


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E4 table."""
    rng = ensure_rng(seed)
    graph = gen.karate_club()
    pattern = pattern_zoo.triangle()
    truth = count_subgraphs(graph, pattern)
    theory = truth / (2.0 * graph.m) ** pattern.rho()
    attempts = 4000 if fast else 20000

    table = Table(
        "E4: one algorithm, three execution substrates  (Theorems 9/11)",
        [
            "substrate",
            "mode",
            "attempts",
            "P(success)",
            "P(theory)",
            "rounds/passes",
            "queries",
            "space_words",
        ],
    )

    direct = DirectAugmentedOracle(graph, derive_rng(rng, "direct"))
    rate, run_result = _success_rate(direct, pattern, SamplerMode.AUGMENTED, attempts, derive_rng(rng, "a"))
    table.add_row(
        "direct query model", "augmented", attempts, rate, theory,
        run_result.rounds, run_result.total_queries, 0,
    )

    relaxed = DirectRelaxedOracle(graph, derive_rng(rng, "relaxed"))
    rate, run_result = _success_rate(relaxed, pattern, SamplerMode.RELAXED, attempts, derive_rng(rng, "b"))
    table.add_row(
        "direct query model", "relaxed", attempts, rate, theory,
        run_result.rounds, run_result.total_queries, 0,
    )

    stream = insertion_stream(graph, rng.getrandbits(48))
    insertion_oracle = InsertionStreamOracle(stream, derive_rng(rng, "ins"))
    rate, run_result = _success_rate(
        insertion_oracle, pattern, SamplerMode.AUGMENTED, attempts, derive_rng(rng, "c")
    )
    table.add_row(
        "insertion-only stream (Thm 9)", "augmented", attempts, rate, theory,
        insertion_oracle.passes_used, run_result.total_queries,
        insertion_oracle.space.peak_words,
    )

    turnstile_attempts = max(400, attempts // 8)
    churn = turnstile_churn_stream(graph, 30, rng.getrandbits(48))
    turnstile_oracle = TurnstileStreamOracle(
        churn, derive_rng(rng, "turn"), sampler_repetitions=4
    )
    rate, run_result = _success_rate(
        turnstile_oracle, pattern, SamplerMode.RELAXED, turnstile_attempts, derive_rng(rng, "d")
    )
    table.add_row(
        "turnstile stream (Thm 11)", "relaxed", turnstile_attempts, rate, theory,
        turnstile_oracle.passes_used, run_result.total_queries,
        turnstile_oracle.space.peak_words,
    )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
