"""Run every experiment and emit a combined report.

``python -m repro.experiments`` regenerates all E1–E12 + A1 tables in
one go (fast mode by default) and can write them as markdown — the
same tables EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    a01_wedge_ablation,
    e01_sampler_probability,
    e02_three_pass,
    e03_turnstile,
    e04_transform,
    e05_space_scaling,
    e06_ers,
    e07_baselines,
    e08_l0_sampler,
    e09_degeneracy,
    e10_covers,
    e11_stream_models,
    e12_two_pass,
    e13_bounds,
)
from repro.experiments.tables import Table

#: Registry of (identifier, module.run) in execution order.
EXPERIMENTS: List[Tuple[str, Callable[..., Table]]] = [
    ("e01", e01_sampler_probability.run),
    ("e02", e02_three_pass.run),
    ("e03", e03_turnstile.run),
    ("e04", e04_transform.run),
    ("e05", e05_space_scaling.run),
    ("e06", e06_ers.run),
    ("e07", e07_baselines.run),
    ("e08", e08_l0_sampler.run),
    ("e09", e09_degeneracy.run),
    ("e10", e10_covers.run),
    ("e11", e11_stream_models.run),
    ("e12", e12_two_pass.run),
    ("e13", e13_bounds.run),
    ("a01", a01_wedge_ablation.run),
]


def run_all(
    fast: bool = True,
    seed: int = 2022,
    only: Optional[List[str]] = None,
    stream=sys.stdout,
    markdown: bool = False,
) -> List[Table]:
    """Run (a subset of) the experiments, printing each table."""
    selected = EXPERIMENTS if not only else [
        (name, runner) for name, runner in EXPERIMENTS if name in set(only)
    ]
    tables: List[Table] = []
    for name, runner in selected:
        start = time.perf_counter()
        table = runner(fast=fast, seed=seed)
        elapsed = time.perf_counter() - start
        tables.append(table)
        print(file=stream)
        if markdown:
            print(table.render_markdown(), file=stream)
        else:
            print(table.render(), file=stream)
        print(f"[{name}: {elapsed:.1f}s]", file=stream)
    return tables


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the experiment tables of EXPERIMENTS.md.",
    )
    parser.add_argument(
        "--full", action="store_true", help="full (slow) configurations"
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help="subset of experiment ids (e01..e10, a01)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit GitHub pipe tables"
    )
    arguments = parser.parse_args(argv)
    known = {name for name, _ in EXPERIMENTS}
    if arguments.only:
        unknown = set(arguments.only) - known
        if unknown:
            parser.error(f"unknown experiment ids: {sorted(unknown)}")
    run_all(
        fast=not arguments.full,
        seed=arguments.seed,
        only=arguments.only,
        markdown=arguments.markdown,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
