"""Run every experiment and emit a combined report.

``python -m repro.experiments`` regenerates all E1–E17 + A1 tables in
one go (fast mode by default) and can write them as markdown — the
same tables EXPERIMENTS.md records.  ``--parallel``/``--workers``
(also reachable as ``python -m repro experiments --parallel``) hand a
process-backend pool size to the experiments whose ``run`` accepts a
``workers`` keyword (currently e14, the backend comparison).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    a01_wedge_ablation,
    e01_sampler_probability,
    e02_three_pass,
    e03_turnstile,
    e04_transform,
    e05_space_scaling,
    e06_ers,
    e07_baselines,
    e08_l0_sampler,
    e09_degeneracy,
    e10_covers,
    e11_stream_models,
    e12_two_pass,
    e13_bounds,
    e14_parallel,
    e15_ingestion,
    e16_sliding_window,
    e17_worlds,
)
from repro.errors import ReproError
from repro.experiments.tables import Table


def resolve_pool(parallel: bool, workers: Optional[int]) -> Optional[int]:
    """Validated ``--parallel``/``--workers`` → :func:`run_all` pool size.

    The single home of the flag semantics, shared by ``repro
    experiments`` and ``python -m repro.experiments`` so they cannot
    drift: ``--workers`` without ``--parallel`` is an error (it would
    otherwise be silently ignored), ``--parallel`` alone defaults to a
    pool of 2, and non-positive pool sizes are rejected here instead of
    deep inside the backend.
    """
    if workers is not None and not parallel:
        raise ReproError("--workers requires --parallel")
    if not parallel:
        return None
    if workers is None:
        return 2
    if workers < 1:
        raise ReproError(f"--workers must be >= 1, got {workers}")
    return workers

#: Registry of (identifier, module.run) in execution order.
EXPERIMENTS: List[Tuple[str, Callable[..., Table]]] = [
    ("e01", e01_sampler_probability.run),
    ("e02", e02_three_pass.run),
    ("e03", e03_turnstile.run),
    ("e04", e04_transform.run),
    ("e05", e05_space_scaling.run),
    ("e06", e06_ers.run),
    ("e07", e07_baselines.run),
    ("e08", e08_l0_sampler.run),
    ("e09", e09_degeneracy.run),
    ("e10", e10_covers.run),
    ("e11", e11_stream_models.run),
    ("e12", e12_two_pass.run),
    ("e13", e13_bounds.run),
    ("e14", e14_parallel.run),
    ("e15", e15_ingestion.run),
    ("e16", e16_sliding_window.run),
    ("e17", e17_worlds.run),
    ("a01", a01_wedge_ablation.run),
]


def run_all(
    fast: bool = True,
    seed: int = 2022,
    only: Optional[List[str]] = None,
    stream=None,
    markdown: bool = False,
    workers: Optional[int] = None,
) -> List[Table]:
    """Run (a subset of) the experiments, printing each table.

    *stream* defaults to the *current* ``sys.stdout``, resolved per
    call rather than at import time (a definition-time default would
    pin whatever stdout redirection happened to be active when this
    module was first imported).  *workers* (a process-backend pool
    size) is forwarded to every experiment whose ``run`` signature
    accepts it; the others are backend-agnostic and run unchanged.
    """
    if stream is None:
        stream = sys.stdout
    selected = EXPERIMENTS if not only else [
        (name, runner) for name, runner in EXPERIMENTS if name in set(only)
    ]
    tables: List[Table] = []
    for name, runner in selected:
        kwargs = {}
        if workers is not None and "workers" in inspect.signature(runner).parameters:
            kwargs["workers"] = workers
        start = time.perf_counter()
        table = runner(fast=fast, seed=seed, **kwargs)
        elapsed = time.perf_counter() - start
        tables.append(table)
        print(file=stream)
        if markdown:
            print(table.render_markdown(), file=stream)
        else:
            print(table.render(), file=stream)
        print(f"[{name}: {elapsed:.1f}s]", file=stream)
    return tables


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the experiment tables of EXPERIMENTS.md.",
    )
    parser.add_argument(
        "--full", action="store_true", help="full (slow) configurations"
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help="subset of experiment ids (e01..e17, a01)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit GitHub pipe tables"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="hand a process-backend pool to backend-aware experiments (e14)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="pool size for --parallel (default: 2)"
    )
    arguments = parser.parse_args(argv)
    known = {name for name, _ in EXPERIMENTS}
    if arguments.only:
        unknown = set(arguments.only) - known
        if unknown:
            parser.error(f"unknown experiment ids: {sorted(unknown)}")
    try:
        workers = resolve_pool(arguments.parallel, arguments.workers)
    except ReproError as error:
        parser.error(str(error))
    run_all(
        fast=not arguments.full,
        seed=arguments.seed,
        only=arguments.only,
        markdown=arguments.markdown,
        workers=workers,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
