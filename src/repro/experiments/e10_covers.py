"""E10 — preliminaries: cover numbers and Lemma 4 decompositions.

For the whole pattern zoo: the LP value ρ(H) against the closed forms
quoted in §2 (ρ(C_{2k+1}) = k + 1/2, ρ(S_k) = k, ρ(K_k) = k/2), the
integral cover β(H) (footnote 1: β(K_r) = β(C_r) = ⌈r/2⌉), the
fractional vertex cover τ(H) (the 1-pass lower-bound parameter of
[KKP18]), the Lemma 4 decomposition type and its cost (must equal ρ),
and the sampler normalisation f_T(H).
"""

from __future__ import annotations

from repro.experiments.tables import Table
from repro.patterns import pattern as pattern_zoo
from repro.patterns.edge_cover import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    integral_edge_cover_number,
)


def _type_string(decomposition) -> str:
    cycles = ",".join(f"C{c}" for c in decomposition.cycle_lengths)
    stars = ",".join(f"S{s}" for s in decomposition.star_petals)
    return "+".join(part for part in (cycles, stars) if part) or "-"


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E10 table."""
    del seed  # deterministic
    patterns = pattern_zoo.standard_zoo()
    if not fast:
        patterns += [
            pattern_zoo.clique(5),
            pattern_zoo.cycle(6),
            pattern_zoo.cycle(7),
            pattern_zoo.star(4),
        ]
    table = Table(
        "E10: cover numbers and Lemma 4 decompositions of the pattern zoo",
        [
            "H",
            "|V|",
            "|E|",
            "rho(LP)",
            "rho(known)",
            "beta",
            "tau",
            "decomposition",
            "decomp_cost",
            "f_T",
            "|Aut|",
        ],
    )
    for pattern in patterns:
        graph = pattern.graph
        rho = fractional_edge_cover_number(graph)
        known = pattern_zoo.KNOWN_RHO.get(pattern.name, "")
        decomposition = pattern.decomposition()
        table.add_row(
            pattern.name,
            graph.n,
            graph.m,
            rho,
            known,
            integral_edge_cover_number(graph),
            fractional_vertex_cover_number(graph),
            _type_string(decomposition),
            float(decomposition.cost),
            pattern.family_count(),
            pattern.automorphism_count(),
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
