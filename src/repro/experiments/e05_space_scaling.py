"""E5 — space scaling: the trial budget grows like m^ρ(H)/#H.

The 3-pass counter's space is (trials × O(log n)); Theorem 17 says
trials ∝ (2m)^ρ/(ε² #H).  This experiment sweeps m on G(n, m) graphs
and reports the measured success probability p = #H/(2m)^ρ and the
budget k* = 1/(ε² p) required for a fixed ε — the column
``k*·#H/(2m)^rho`` should be flat (≈ 1/ε²), exhibiting the scaling law
directly from measurements.
"""

from __future__ import annotations

from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import sample_copies_stream
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E5 table."""
    rng = ensure_rng(seed)
    epsilon = 0.25
    pattern = pattern_zoo.triangle()
    table = Table(
        "E5: trial budget scaling, k* = 1/(eps^2 p) vs (2m)^rho/#H  (Theorem 17)",
        [
            "n",
            "m",
            "#H",
            "(2m)^rho/#H",
            "attempts",
            "p_measured",
            "p_theory",
            "k*_measured",
            "k*_normalized",
        ],
    )
    sizes = [(30, 120), (40, 240), (50, 420)] if fast else [
        (30, 120),
        (40, 240),
        (50, 420),
        (60, 700),
        (80, 1200),
    ]
    attempts = 8000 if fast else 40000
    for n, m in sizes:
        graph = gen.gnm(n, m, rng.getrandbits(48))
        truth = count_subgraphs(graph, pattern)
        if truth == 0:
            continue
        stream = insertion_stream(graph, rng.getrandbits(48))
        outputs = sample_copies_stream(stream, pattern, attempts, rng.getrandbits(48))
        successes = sum(1 for output in outputs if output is not None)
        p_measured = successes / attempts
        p_theory = truth / (2.0 * m) ** pattern.rho()
        hardness = (2.0 * m) ** pattern.rho() / truth
        k_star = 1.0 / (epsilon**2 * p_measured) if p_measured else float("inf")
        table.add_row(
            n,
            m,
            truth,
            hardness,
            attempts,
            p_measured,
            p_theory,
            k_star,
            k_star / hardness,
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
