"""E13 — the §1/§2 bound landscape: AGM, cover chain, KKP scale.

For one host and the pattern zoo, tabulate

* #H (exact) against the AGM bound m^ρ(H) — the ratio column must be
  <= 1 on every row ([AGM08]; this is what keeps Theorem 1's space
  meaningful);
* the cover chain ρ(H) <= β(H) <= |E(H)| that orders the space bounds
  of [AKK19] vs [BC17] vs [Kan+12] (§1, item 3);
* τ(H) and the [KKP18] 1-pass lower-bound scale m/#H^{1/τ}, the
  reason one pass cannot replace the paper's three.
"""

from __future__ import annotations

from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import agm
from repro.patterns import pattern as pattern_zoo
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E13 table."""
    rng = ensure_rng(seed)
    host = gen.gnp(28 if fast else 48, 0.35, rng=rng.getrandbits(48))
    patterns = pattern_zoo.standard_zoo()
    if not fast:
        patterns = pattern_zoo.extended_zoo()

    table = Table(
        f"E13: AGM / cover-chain / KKP landscape on gnp (n={host.n}, m={host.m})",
        ["H", "rho", "beta", "|E(H)|", "tau", "#H", "m^rho", "AGM ratio", "kkp 1-pass scale"],
    )
    for pattern in patterns:
        check = agm.verify_agm(host, pattern)
        assert check.holds, f"AGM bound violated for {pattern.name}"
        table.add_row(
            pattern.name,
            pattern.rho(),
            pattern.beta(),
            pattern.num_edges,
            pattern.tau(),
            check.count,
            check.bound,
            check.ratio,
            agm.one_pass_lower_bound_scale(pattern, host.m, check.count),
        )
    return table


if __name__ == "__main__":
    print(run().render())
