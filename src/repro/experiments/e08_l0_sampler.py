"""E8 — Lemma 7: ℓ0-sampler success probability and near-uniformity.

Feeds turnstile vectors (insert-then-partially-delete workloads) into
ℓ0-samplers and measures:

* success rate over fresh samplers (Lemma 7: 1 - 1/n^c; here
  1 - 2^-repetitions at the critical level);
* uniformity over the surviving support: max/min empirical frequency
  ratio and a chi-square statistic against the uniform law;
* correctness: a returned item must be in the live support — deleted
  items must never be reported (counted in ``ghost_answers``).

Also serves as the ablation for the repetition knob (space vs failure
rate).
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.tables import Table
from repro.sketch.l0 import L0Sampler
from repro.utils.rng import derive_rng, ensure_rng


def _workload(universe: int, live: int, churn: int, rng):
    """Insert live+churn random items, delete the churn ones."""
    items = rng.sample(range(universe), live + churn)
    live_items = set(items[:live])
    churn_items = items[live:]
    updates = [(item, 1) for item in items] + [(item, -1) for item in churn_items]
    rng.shuffle(updates)
    return live_items, updates


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E8 table."""
    rng = ensure_rng(seed)
    table = Table(
        "E8: l0-sampler success rate and uniformity under churn  (Lemma 7)",
        [
            "universe",
            "support",
            "churn",
            "repetitions",
            "draws",
            "success_rate",
            "ghost_answers",
            "max/min_freq",
            "chi2/df",
            "space_words",
        ],
    )
    cases = [
        (512, 12, 8, 2),
        (512, 12, 8, 6),
        (4096, 40, 30, 6),
    ]
    if not fast:
        cases.append((16384, 100, 80, 8))
    draws = 1200 if fast else 5000
    for universe, live, churn, repetitions in cases:
        live_items, updates = _workload(universe, live, churn, derive_rng(rng, "wl"))
        counts: Counter = Counter()
        failures = 0
        ghosts = 0
        space = 0
        for draw in range(draws):
            sampler = L0Sampler(
                universe, derive_rng(rng, f"{universe}-{repetitions}-{draw}"),
                repetitions=repetitions,
            )
            for item, delta in updates:
                sampler.update(item, delta)
            space = sampler.space_words
            result = sampler.sample()
            if result is None:
                failures += 1
            elif result not in live_items:
                ghosts += 1
            else:
                counts[result] += 1
        successes = draws - failures - ghosts
        if counts:
            frequencies = [counts.get(item, 0) for item in live_items]
            low = min(frequencies)
            ratio = (max(frequencies) / low) if low else float("inf")
            expected = successes / len(live_items)
            chi2 = sum((f - expected) ** 2 / expected for f in frequencies)
            chi2_per_df = chi2 / max(1, len(live_items) - 1)
        else:
            ratio, chi2_per_df = float("inf"), float("inf")
        table.add_row(
            universe,
            live,
            churn,
            repetitions,
            draws,
            successes / draws,
            ghosts,
            ratio,
            chi2_per_df,
            space,
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
