"""E14: the sharded parallel backends vs the serial fused engine.

Runs the same median-of-K mirror-mode fused count (Theorem 17, K
copies in 3 passes) on each execution backend — serial, daemon
threads, worker processes fed through the shared-memory batch ring —
and records estimate equality plus wall-clock time.  Mirror mode's
per-copy state is private, so every backend/worker-count row must
report the *same* estimate for the same seed — the table makes that
contract visible — while timings show what sharding buys on the
current machine (with a single CPU the parallel rows mostly measure
protocol overhead; see ``docs/ARCHITECTURE.md`` for guidance on
worker counts).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream


def run(fast: bool = True, seed: int = 2022, workers: Optional[int] = None) -> Table:
    """Build the E14 table (see module docstring)."""
    # Power-law-cluster graphs are triangle-dense, so the per-trial
    # success probability is high enough for stable nonzero estimates
    # at fast-mode trial budgets.
    n = 300 if fast else 1500
    copies = 8 if fast else 32
    trials = 250 if fast else 800
    worker_counts = [1, workers or 2] if fast else [1, 2, workers or 4]

    graph = gen.power_law_cluster(n, 5, 0.8, seed)
    pattern = zoo.triangle()
    table = Table(
        f"E14: serial vs thread vs process backends (mirror, K={copies}, "
        f"trials/copy={trials}, m={graph.m})",
        ["backend", "workers", "estimate", "passes", "seconds", "== serial"],
    )

    def fused_count(backend: str, pool: Optional[int]):
        stream = insertion_stream(graph, rng=seed + 1)
        start = time.perf_counter()
        result = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials,
            rng=seed + 2,
            mode=FusionMode.MIRROR,
            backend=backend,
            workers=pool,
        )
        return result, time.perf_counter() - start

    serial, serial_seconds = fused_count("serial", None)
    table.add_row("serial", 1, serial.estimate, serial.passes, serial_seconds, True)
    for backend in ("thread", "process"):
        for pool in dict.fromkeys(worker_counts):
            result, seconds = fused_count(backend, pool)
            table.add_row(
                backend,
                pool,
                result.estimate,
                result.passes,
                seconds,
                result.estimates == serial.estimates,
            )
    return table
