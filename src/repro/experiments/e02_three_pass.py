"""E2 — Theorem 17: 3-pass insertion-only accuracy vs trial budget.

Sweeps ε and measures the relative error of the 3-pass counter with
the Chernoff budget k ∝ (2m)^ρ/(ε² #H).  The theory predicts the
measured error stays below ε (with the practical constant, below ~ε
on average); the table also reports the budget so the space scaling
is visible: halving ε quadruples k.
"""

from __future__ import annotations

import statistics

from repro.estimate.concentration import ParamMode
from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.experiments.workloads import medium_workloads
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E2 table."""
    rng = ensure_rng(seed)
    table = Table(
        "E2: 3-pass insertion-only counter, error vs epsilon  (Theorem 17)",
        [
            "graph",
            "H",
            "m",
            "#H",
            "epsilon",
            "trials",
            "mean_rel_err",
            "max_rel_err",
            "passes",
            "space_words",
        ],
    )
    epsilons = [0.4, 0.2] if fast else [0.4, 0.2, 0.1]
    repeats = 3 if fast else 6
    workloads = medium_workloads()[: 1 if fast else 3]
    patterns = [pattern_zoo.triangle()] if fast else [
        pattern_zoo.triangle(),
        pattern_zoo.path(3),
    ]
    for workload in workloads:
        graph = workload.graph(seed)
        for pattern in patterns:
            truth = count_subgraphs(graph, pattern)
            if truth == 0:
                continue
            for epsilon in epsilons:
                errors = []
                last = None
                for repeat in range(repeats):
                    stream = insertion_stream(graph, rng.getrandbits(48))
                    result = count_subgraphs_insertion_only(
                        stream,
                        pattern,
                        epsilon=epsilon,
                        lower_bound=truth,
                        rng=rng.getrandbits(48),
                        param_mode=ParamMode.PRACTICAL,
                    )
                    errors.append(result.error_vs(truth))
                    last = result
                table.add_row(
                    workload.name,
                    pattern.name,
                    graph.m,
                    truth,
                    epsilon,
                    last.trials,
                    statistics.mean(errors),
                    max(errors),
                    last.passes,
                    last.space_words,
                )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
