"""E12 — the conclusion's open question, star subclass.

"Can we obtain a 2-pass algorithm for #H with space
~O(m^ρ(H)/(ε²#H))?"  For patterns whose Lemma 4 decomposition is
star-only, yes: round 2 of Algorithm 1 exists solely to complete odd
cycles, so the FGP sampler is 2-round adaptive and Theorem 9 gives a
2-pass counter at unchanged space.

The table runs the 2-pass and 3-pass counters at identical trial
budgets on the star-decomposable zoo (P3, S2, M2, C4, K4): passes
drop from 3 to 2; the error and space columns stay comparable —
i.e. the pass saving is free.  Odd-cycle patterns (triangle row)
are rejected by the 2-pass counter, marking the open question's
remaining gap.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streaming.two_pass import count_subgraphs_two_pass
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E12 table."""
    rng = ensure_rng(seed)
    graph = gen.gnp(32 if fast else 60, 0.35, rng=seed + 12)

    cases = [
        (pattern_zoo.path(3), 4000 if fast else 16000),
        (pattern_zoo.star(2), 4000 if fast else 16000),
        (pattern_zoo.matching(2), 4000 if fast else 16000),
        (pattern_zoo.cycle(4), 20000 if fast else 60000),
        (pattern_zoo.triangle(), 4000 if fast else 16000),
    ]

    table = Table(
        f"E12: 2-pass vs 3-pass on star-decomposable H (gnp n={graph.n}, m={graph.m})",
        ["H", "#H", "2p est (err)", "2p passes", "3p est (err)", "3p passes"],
    )
    for pattern, trials in cases:
        truth = count_subgraphs(graph, pattern)
        three = count_subgraphs_insertion_only(
            insertion_stream(graph, rng.getrandbits(48)),
            pattern,
            trials=trials,
            rng=rng.getrandbits(48),
        )
        try:
            two = count_subgraphs_two_pass(
                insertion_stream(graph, rng.getrandbits(48)),
                pattern,
                trials=trials,
                rng=rng.getrandbits(48),
            )
            two_cell = f"{two.estimate:.1f} ({two.error_vs(truth):.2f})"
            two_passes = str(two.passes)
        except EstimationError:
            two_cell = "rejected (odd cycle)"
            two_passes = "—"
        table.add_row(
            pattern.name,
            truth,
            two_cell,
            two_passes,
            f"{three.estimate:.1f} ({three.error_vs(truth):.2f})",
            three.passes,
        )
    return table


if __name__ == "__main__":
    print(run().render())
