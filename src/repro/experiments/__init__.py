"""Experiment harness: one module per experiment E1-E17 + A1 of DESIGN.md.

Every module exposes ``run(fast=True, seed=...) -> Table``; the
benchmark suite regenerates each table, and EXPERIMENTS.md records a
captured run.  The paper itself contains no empirical tables (it is a
theory paper), so these experiments validate its theorems and lemmas.
"""

from repro.experiments.tables import Table

__all__ = ["Table"]
