"""E1 — Lemma 15/16: per-copy sampling probability is 1/(2m)^ρ(H).

For small (graph, pattern) pairs, run many independent FGP attempts
through the full 3-pass streaming pipeline and compare the measured
success probability (some copy returned) against #H/(2m)^ρ(H), and
the per-copy frequency spread against 1/(2m)^ρ(H).

Columns: measured P(success) with a Wilson interval vs the theory
value; the ratio should hug 1.0 on every row (both SampleWedge
branches are exercised: the lollipop workload has degrees on both
sides of √(2m)).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.estimate.concentration import wilson_interval
from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.experiments.workloads import small_workloads
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import sample_copies_stream
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def _pairs(fast: bool) -> List[Tuple[str, object, object]]:
    workloads = small_workloads()
    patterns = [
        pattern_zoo.edge(),
        pattern_zoo.triangle(),
        pattern_zoo.path(3),
    ]
    if not fast:
        patterns += [
            pattern_zoo.path(4),
            pattern_zoo.clique(4),
            pattern_zoo.cycle(5),
            pattern_zoo.star(3),
            pattern_zoo.matching(2),
        ]
    pairs = []
    for workload in workloads:
        for pattern in patterns:
            pairs.append((workload.name, workload, pattern))
    return pairs


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E1 table."""
    rng = ensure_rng(seed)
    table = Table(
        "E1: FGP sampler, P(copy returned) vs #H/(2m)^rho  (Lemma 15/16)",
        [
            "graph",
            "H",
            "m",
            "#H",
            "attempts",
            "P(measured)",
            "P(theory)",
            "ratio",
            "wilson_lo",
            "wilson_hi",
            "copies_seen",
        ],
    )
    attempts = 6000 if fast else 30000
    for name, workload, pattern in _pairs(fast):
        graph = workload.graph(seed)
        truth = count_subgraphs(graph, pattern)
        if truth == 0:
            continue
        stream = insertion_stream(graph, rng.getrandbits(48))
        outputs = sample_copies_stream(
            stream, pattern, instances=attempts, rng=rng.getrandbits(48)
        )
        hits = Counter(copy for copy in outputs if copy is not None)
        successes = sum(hits.values())
        theory = truth / (2.0 * graph.m) ** pattern.rho()
        measured = successes / attempts
        low, high = wilson_interval(successes, attempts)
        table.add_row(
            name,
            pattern.name,
            graph.m,
            truth,
            attempts,
            measured,
            theory,
            measured / theory if theory else float("nan"),
            low,
            high,
            len(hits),
        )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
