"""E17: a world-sweep table — estimators across synthetic workloads.

The :mod:`repro.worlds` harness in one table: a grid of four generator
families (Erdős–Rényi, small-world, stochastic Kronecker,
configuration model) crossed with insertion and deletion-heavy
scenarios, swept over the insertion-only and turnstile estimators at
two space budgets.  Every cell is materialized to a ``.reb`` file and
streamed out-of-core through
:class:`~repro.streams.datasets.DiskEdgeStream` with a bounded LRU
batch cache, exactly as ``repro worlds`` runs it.

Read the table for the harness's two claims:

* **generalization** — the ε-violation column shows the same
  estimator on the same budget across structurally different graphs
  (heavy-tailed Kronecker vs ring-lattice small-world), where a fixed
  benchmark graph would show one number;
* **bounded memory** — the peak-bytes column is the metered batch
  cache, flat across families however long the stream is.
"""

from __future__ import annotations

import tempfile

from repro.experiments.tables import Table
from repro.worlds import WorldGrid, run_sweep


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Build the E17 table (see module docstring)."""
    budgets = [40, 120] if fast else [500, 2000]
    copies = 2 if fast else 5
    scale = 1 if fast else 4
    grid = WorldGrid(
        families=[
            {"family": "gnp", "n": 32 * scale, "p": 0.22 if fast else 0.08},
            {"family": "ws", "n": 40 * scale, "k": 4 if fast else 6,
             "rewire_p": 0.1},
            {"family": "kronecker", "power": 5 if fast else 9,
             "edges": 120 * scale * scale},
            {"family": "config", "n": 56 * scale, "exponent": 2.5,
             "min_degree": 2},
        ],
        scenarios=["insertion", {"kind": "deletion_heavy", "deletion_rate": 0.4}],
        estimators=["insertion", "turnstile"],
        patterns=["triangle"],
        budgets=budgets,
        copies=copies,
        epsilon=0.5,
        seed=seed,
        cache="lru:1M",
    )
    with tempfile.TemporaryDirectory(prefix="repro-e17-") as workdir:
        document = run_sweep(grid, workdir=workdir)

    table = Table(
        f"E17: world sweep ({len(grid.families)} families x "
        f"{len(grid.scenarios)} scenarios x 2 estimators x "
        f"{len(budgets)} budgets, K={copies}, out-of-core .reb streams)",
        ["family", "scenario", "estimator", "budget", "m", "truth",
         "estimate", "rel err", "eps viol", "peak KiB", "upd/s"],
    )
    for row in document["rows"]:
        table.add_row(
            row["family"].split("(")[0],
            row["scenario"].split("(")[0],
            row["estimator"],
            row["space_budget"],
            row["m"],
            row["truth"],
            f"{row['estimate']:.1f}",
            f"{row['rel_err']:.3f}",
            "YES" if row["eps_violation"] else "no",
            f"{row['peak_resident_bytes'] / 1024:.1f}",
            f"{row['updates_per_s']:.0f}",
        )
    return table
