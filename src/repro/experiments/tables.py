"""Plain-text result tables for the experiment harness.

Deliberately dependency-free: aligned monospace output for terminals
and pipe-table output for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 10000 or magnitude < 0.001:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4f}"
    return str(value)


class Table:
    """An experiment result table: a title, column names, and rows."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        #: The unformatted row values, for machine-readable archiving.
        self.raw_rows: List[List[Any]] = []

    def add_row(self, *values: Any) -> None:
        """Append one row; values are formatted immediately (the raw
        values are kept in :attr:`raw_rows`)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.raw_rows.append(list(values))
        self.rows.append([_format_cell(value) for value in values])

    def column(self, name: str) -> List[str]:
        """All cells of the named column (post-formatting)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Aligned monospace rendering with the title on top."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub pipe-table rendering (for EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def print_tables(tables: Iterable[Table]) -> None:
    """Print tables separated by blank lines (bench harness helper)."""
    for table in tables:
        print()
        print(table.render())
        print()
