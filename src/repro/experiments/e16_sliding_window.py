"""E16: sliding-window live estimation with checkpoint continuity.

The live engine's flagship scenario: a sliding window of W edges over
an arrival stream, realized as a valid turnstile feed
(:func:`repro.streams.datasets.sliding_window_updates` emits each
block's deletions before the next block streams in).  A
:class:`~repro.engine.live.LiveEngine` ingests the feed incrementally
— K mirror copies of the FGP turnstile counter plus the exact
store-everything baseline — and is *queried mid-stream* at several
points; halfway through it is snapshotted to disk, restored, and fed
onward.

The table makes two contracts visible:

* **continuous queries** — at every probe point the exact baseline's
  fork reports the true count of the *current window graph*, and the
  FGP median tracks it within the usual sampling error;
* **checkpoint continuity** — the restored engine's probe estimates
  equal the uninterrupted engine's bit for bit (the ``restored ==``
  column), i.e. a crash/restart between feeds is invisible.
"""

from __future__ import annotations

import os
import statistics
import tempfile

from repro.engine import EstimatorSpec, LiveEngine, fgp_turnstile_estimator
from repro.engine.parallel import build_exact_stream
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.datasets import sliding_window_updates
from repro.streams.stream import insertion_stream


def _make_engine(n: int, copies: int, trials: int, pattern, seed: int) -> LiveEngine:
    engine = LiveEngine(n=n, allow_deletions=True)
    for copy in range(copies):
        name = f"copy-{copy}"
        engine.register_spec(
            EstimatorSpec(
                name=name,
                factory=fgp_turnstile_estimator,
                kwargs=dict(
                    pattern=pattern, trials=trials, rng=seed + 100 + copy, name=name
                ),
            )
        )
    engine.register_spec(
        EstimatorSpec(
            name="exact", factory=build_exact_stream, kwargs=dict(pattern=pattern)
        )
    )
    return engine


def _median(results, copies: int) -> float:
    return statistics.median(results[f"copy-{c}"].estimate for c in range(copies))


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Build the E16 table (see module docstring)."""
    n = 45 if fast else 200
    window = 180 if fast else 2000
    copies = 2 if fast else 6
    trials = 40 if fast else 400
    chunk = 128 if fast else 1024

    graph = gen.gnp(n, 0.28 if fast else 0.15, rng=seed)
    pattern = zoo.triangle()
    arrivals = insertion_stream(graph, rng=seed + 1)
    u, v, _ = arrivals.columns()
    wu, wv, wd = sliding_window_updates(u, v, window)
    total = len(wu)

    table = Table(
        f"E16: sliding-window live estimation (window={window} of m={graph.m} "
        f"arrivals, FGP turnstile mirror K={copies}, trials/copy={trials})",
        ["elements", "window m", "exact #tri", "fgp median", "rel err", "restored =="],
    )

    engine = _make_engine(graph.n, copies, trials, pattern, seed)
    restored = None
    checkpoint = os.path.join(tempfile.mkdtemp(prefix="repro-e16-"), "live.ckpt")
    probes = sorted({total // 4, total // 2, (3 * total) // 4, total})

    fed = 0
    for start in range(0, total, chunk):
        stop = min(start + chunk, total)
        batch = (wu[start:stop], wv[start:stop], wd[start:stop])
        engine.feed(batch)
        if restored is not None:
            restored.feed(batch)
        fed = stop
        if restored is None and fed >= total // 2:
            # Crash/restart drill: persist, restore, continue on both.
            engine.snapshot(checkpoint)
            restored = LiveEngine.restore(checkpoint)
        if probes and fed >= probes[0]:
            while probes and fed >= probes[0]:
                probes.pop(0)
            results = engine.estimate()
            exact = results["exact"].estimate
            median = _median(results, copies)
            if restored is not None:
                mirrored = restored.estimate()
                agree = all(
                    mirrored[name].estimate == results[name].estimate
                    for name in engine.estimator_names
                )
            else:
                agree = True  # not restored yet: trivially in agreement
            error = abs(median - exact) / exact if exact else float(median != exact)
            table.add_row(
                fed,
                engine.net_edge_count,
                int(exact),
                f"{median:.1f}",
                f"{error:.3f}",
                "yes" if agree else "NO",
            )
    if os.path.exists(checkpoint):
        os.remove(checkpoint)
    return table
