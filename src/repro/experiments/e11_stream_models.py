"""E11 — §1.3 stream models: what extra stream structure buys.

One graph, one #T, four counters across three models:

* arbitrary order — the paper's 3-pass counter (Theorem 17) and the
  2-pass MVV wedge-closure baseline;
* random order — a 1-pass prefix-wedge estimator, valid only under
  the model's uniform-permutation promise;
* adjacency list — a 2-pass uniform-wedge estimator exploiting list
  contiguity.

The table also runs the random-order estimator on an *adversarial*
order to show the promise is load-bearing: the same algorithm that is
unbiased on a random permutation collapses when the order hides
closures (high-degree edges last).
"""

from __future__ import annotations

import statistics

from repro.baselines.mvv_two_pass import mvv_two_pass_triangle_count
from repro.baselines.order_models import (
    adjacency_list_triangle_count,
    random_order_triangle_count,
)
from repro.exact.triangles import count_triangles
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streams.generators import adversarial_order_stream
from repro.streams.models import adjacency_list_stream, random_order_stream
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E11 table."""
    rng = ensure_rng(seed)
    graph = gen.power_law_cluster(220 if fast else 600, 5, 0.5, seed + 11)
    truth = count_triangles(graph)
    repeats = 5 if fast else 15

    table = Table(
        f"E11: stream models on plc graph (n={graph.n}, m={graph.m}, #T={truth})",
        ["model", "algorithm", "passes", "mean est", "rel_err", "space_words"],
    )

    def record(model, runs):
        results = [make() for make in runs]
        mean_est = statistics.mean(r.estimate for r in results)
        table.add_row(
            model,
            results[0].algorithm,
            results[0].passes,
            mean_est,
            abs(mean_est - truth) / truth if truth else 0.0,
            max(r.space_words for r in results),
        )

    record(
        "arbitrary",
        [
            lambda i=i: count_subgraphs_insertion_only(
                insertion_stream(graph, rng.getrandbits(48)),
                pattern_zoo.triangle(),
                trials=3000 if fast else 12000,
                rng=rng.getrandbits(48),
            )
            for i in range(repeats)
        ],
    )
    record(
        "arbitrary",
        [
            lambda i=i: mvv_two_pass_triangle_count(
                insertion_stream(graph, rng.getrandbits(48)),
                sample_probability=0.25,
                rng=rng.getrandbits(48),
            )
            for i in range(repeats)
        ],
    )
    record(
        "random order",
        [
            lambda i=i: random_order_triangle_count(
                random_order_stream(graph, rng.getrandbits(48)),
                prefix_fraction=0.5,
                sample_probability=0.5,
                rng=rng.getrandbits(48),
            )
            for i in range(repeats)
        ],
    )
    record(
        "adversarial (promise broken)",
        [
            lambda i=i: random_order_triangle_count(
                adversarial_order_stream(graph),
                prefix_fraction=0.5,
                sample_probability=0.5,
                rng=rng.getrandbits(48),
            )
            for i in range(repeats)
        ],
    )
    record(
        "adjacency list",
        [
            lambda i=i: adjacency_list_triangle_count(
                adjacency_list_stream(graph, rng.getrandbits(48)),
                wedge_samples=400 if fast else 1500,
                rng=rng.getrandbits(48),
            )
            for i in range(repeats)
        ],
    )
    return table


if __name__ == "__main__":
    print(run().render())
