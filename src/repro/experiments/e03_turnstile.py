"""E3 — Theorem 1: the 3-pass turnstile counter under deletions.

Builds a churn stream (insertions plus later-retracted extra edges)
whose final graph equals a reference graph, runs the turnstile counter
on it, and compares against (a) the exact count of the final graph and
(b) the insertion-only counter on the consolidated stream.  The
turnstile estimate must track the *final* graph — deleted edges must
leave no trace — which is the defining property of the ℓ0-backed
emulation (Theorem 11).
"""

from __future__ import annotations

from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


def run(fast: bool = True, seed: int = 2022) -> Table:
    """Regenerate the E3 table."""
    rng = ensure_rng(seed)
    table = Table(
        "E3: 3-pass turnstile counter on churn streams  (Theorem 1)",
        [
            "graph",
            "H",
            "m_final",
            "churn",
            "stream_len",
            "#H",
            "turnstile_est",
            "turnstile_err",
            "insertion_est",
            "insertion_err",
            "passes",
        ],
    )
    cases = [
        ("karate", gen.karate_club(), 40),
        ("gnp(40,0.2)", gen.gnp(40, 0.2, seed + 11), 80),
    ]
    if not fast:
        cases.append(("ba(120,4)", gen.barabasi_albert(120, 4, seed + 12), 160))
    trials = 2500 if fast else 8000
    patterns = [pattern_zoo.triangle()] if fast else [
        pattern_zoo.triangle(),
        pattern_zoo.path(3),
    ]
    for name, graph, churn in cases:
        for pattern in patterns:
            truth = count_subgraphs(graph, pattern)
            if truth == 0:
                continue
            turnstile = turnstile_churn_stream(graph, churn, rng.getrandbits(48))
            result_t = count_subgraphs_turnstile(
                turnstile,
                pattern,
                trials=trials,
                rng=rng.getrandbits(48),
                sampler_repetitions=4,
            )
            insertion = insertion_stream(graph, rng.getrandbits(48))
            result_i = count_subgraphs_insertion_only(
                insertion, pattern, trials=trials, rng=rng.getrandbits(48)
            )
            table.add_row(
                name,
                pattern.name,
                graph.m,
                churn,
                turnstile.length,
                truth,
                result_t.estimate,
                result_t.error_vs(truth),
                result_i.estimate,
                result_i.error_vs(truth),
                result_t.passes,
            )
    return table


if __name__ == "__main__":
    print(run(fast=True).render())
