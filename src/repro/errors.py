"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding a self-loop, querying a vertex that does not
    exist, or removing an edge that is not present.
    """


class PatternError(ReproError):
    """Raised for invalid target patterns H.

    Examples: a pattern with an isolated vertex (no edge cover
    exists), or a decomposition request on an empty pattern.
    """


class StreamError(ReproError, ValueError):
    """Raised for invalid stream operations.

    Examples: a turnstile stream that deletes a non-existent edge,
    reading more passes than a single-pass stream allows, or an invalid
    ``batch_size``/cache-policy argument.  Also a :class:`ValueError`,
    so argument-validation failures (non-positive or non-integer batch
    sizes, malformed byte budgets) satisfy callers that catch the
    standard exception.
    """


class WorldsError(ReproError, ValueError):
    """Raised for invalid scenario-sweep grids and sweep documents.

    Examples: a grid with no families, a negative deletion rate, a
    degree exponent <= 1, or a sweep JSON document that fails schema
    validation.  Also a :class:`ValueError` so parse-time validation of
    grid specs satisfies callers that catch the standard exception.
    """


class OracleError(ReproError):
    """Raised when a query to a graph oracle is malformed.

    Examples: asking for the i-th neighbor with ``i`` out of range, or
    issuing a random-edge query against the (non-augmented) general
    graph model.
    """


class SketchError(ReproError):
    """Raised when a sketch is used inconsistently.

    Examples: combining sketches with different seeds, or querying an
    ℓ0-sampler whose recovery failed.
    """


class CheckpointError(ReproError):
    """Raised when serialized state cannot be captured or restored.

    Examples: loading a ``state_dict`` into an object built with a
    different configuration (reservoir size, sketch universe, trial
    budget), restoring a checkpoint file with an unknown format
    version, or snapshotting an engine while a batch is mid-flight.
    """


class MergeError(ReproError):
    """Raised when two stateful objects cannot be merged.

    Two flavours, both loud by design:

    * **Incompatible shards** — the objects were built from different
      configurations (universe, levels, seeds, pass index, hash
      coefficients...), so adding their aggregates would silently
      corrupt; the message names the mismatched field.
    * **Non-mergeable semantics** — the object's sampling distribution
      depends on the global stream order or element count (reservoir
      paths), so no merge of per-shard states equals a single-stream
      run; the message documents why and points at the mergeable
      (turnstile/L0) alternative.
    """


class ServiceError(ReproError):
    """Raised when the multi-tenant service layer refuses a request.

    Admission control and backpressure speak through this type: opening
    a stream past ``max_streams``, a feed that would blow the in-flight
    byte budget or push a journal past its high watermark, a command
    naming a stream that is not open, or a malformed protocol line.
    Refusals are **non-destructive** — the stream (and the registry)
    are left exactly as they were, so the client can retry, drain, or
    open elsewhere.  The message names the limit that was hit.
    """


class EngineError(ReproError):
    """Raised for invalid fused-engine usage.

    Examples: registering two estimators under the same name, reading
    a result before the engine finished, or feeding a pass batch to an
    estimator that declined the pass.
    """


class WorkerLossError(EngineError):
    """Raised when pool workers die *silently* or stop making progress.

    Distinct from a worker-reported failure (an estimator raised; the
    traceback travels back as a plain :class:`EngineError` and always
    aborts the run): a silent loss — SIGKILL, OOM, segfault, or a
    wedged worker that stopped draining its command queue — is the
    fault class the engines can recover from by respawning or
    quarantining the shard (see ``on_worker_loss`` /
    ``LiveEngine(respawn_budget=...)``).

    ``worker_ids`` lists the lost workers; ``delivered`` (optional) is
    the set of workers a mid-broadcast message had already reached
    when the loss surfaced, which is what lets recovery finish the
    delivery to the survivors instead of double-sending.
    """

    def __init__(self, message, worker_ids=(), delivered=None):
        super().__init__(message)
        self.worker_ids = tuple(worker_ids)
        self.delivered = None if delivered is None else frozenset(delivered)


class FaultInjected(ReproError):
    """Raised by an exercised :class:`repro.faults.FaultPlan` rule.

    Only fault-injection drills raise this — production code never
    does.  Rules with transient actions raise standard ``OSError``
    subclasses instead (so retry layers treat them like real I/O
    failures); ``FaultInjected`` is the loud, typed variant for rules
    that must abort a run visibly.
    """


class EstimationError(ReproError):
    """Raised when an estimator cannot produce a value.

    Examples: a zero trial budget, or a geometric search that
    exhausted its range without finding a stable estimate.
    """
