"""Geometric search over the unknown lower bound L (Lemma 21 usage).

The paper parameterizes its algorithms by a lower bound L on #H and
notes that the standard fix when L is unknown is a (parallel)
geometric search: run the estimator with guesses L = U, U/2, U/4, ...
and accept the first guess the estimate is consistent with.  The ERS
counter (and any estimator with the same contract: over-guessing L
yields an estimate below L whp — the second bullet of Lemma 21)
plugs into this wrapper.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import EstimationError


def geometric_search(
    estimator: Callable[[float], float],
    upper_bound: float,
    floor: float = 1.0,
    shrink: float = 2.0,
    consistency_factor: float = 1.0,
) -> Tuple[float, float, int]:
    """Find a self-consistent estimate by geometric descent on L.

    Parameters
    ----------
    estimator:
        Maps a guessed lower bound L to an estimate of #H.  Contract
        (Lemma 21): if L <= #H <= c*L the estimate is accurate; if
        L > #H the estimate falls below L (whp).
    upper_bound:
        A trivially valid starting guess (e.g. m^ρ(H), the AGM bound).
    floor:
        Stop when L drops below this (then #H < floor is reported
        as estimate 0).
    shrink:
        Geometric step between guesses.
    consistency_factor:
        Accept guess L when estimate >= consistency_factor * L.

    Returns
    -------
    (estimate, accepted_L, evaluations)
    """
    if upper_bound < floor:
        raise EstimationError(
            f"upper bound {upper_bound} below floor {floor}; nothing to search"
        )
    if shrink <= 1.0:
        raise EstimationError(f"shrink factor must exceed 1, got {shrink}")

    guess = upper_bound
    evaluations = 0
    last_estimate: Optional[float] = None
    while guess >= floor:
        estimate = estimator(guess)
        evaluations += 1
        last_estimate = estimate
        if estimate >= consistency_factor * guess:
            return estimate, guess, evaluations
        guess /= shrink
    # Every guess was rejected: #H is below the floor.
    return (last_estimate if last_estimate is not None else 0.0), floor, evaluations
