"""Concentration helpers: trial budgets and robust aggregation.

Theorem 17 chooses k = 30 (2m)^ρ ln(n) / (ε² L) sampler instances so a
Chernoff bound gives a (1±ε)-approximation with high probability.
:func:`chernoff_trials` computes that budget (in THEORY mode) or a
constant-factor-scaled version (PRACTICAL mode) that keeps laptop
experiments tractable; experiments report accuracy as a function of
the actual budget, which is the theoretically meaningful quantity.
"""

from __future__ import annotations

import math
import statistics
from typing import List, Sequence

from repro.errors import EstimationError
from repro.utils.validation import check_fraction, check_positive


class ParamMode:
    """Constant-factor regime for trial budgets."""

    THEORY = "theory"  # the paper's constants, verbatim
    PRACTICAL = "practical"  # same shape, laptop-scale constants


def chernoff_trials(
    m: int,
    rho: float,
    epsilon: float,
    n: int,
    lower_bound: float,
    mode: str = ParamMode.PRACTICAL,
    practical_constant: float = 4.0,
    cap: int = 2_000_000,
) -> int:
    """Sampler instances needed for a (1±ε)-approximation of #H.

    THEORY mode returns the paper's ``30 (2m)^ρ ln(n) / (ε² L)``;
    PRACTICAL replaces ``30 ln n`` with *practical_constant*.  Both
    are capped (the cap exists so an over-optimistic lower bound
    cannot request an absurd budget; hitting it is reported by the
    caller as a truncated run).
    """
    check_positive(m, "m")
    check_fraction(epsilon, "epsilon")
    check_positive(lower_bound, "lower_bound")
    base = (2.0 * m) ** rho / (epsilon**2 * lower_bound)
    if mode == ParamMode.THEORY:
        trials = 30.0 * math.log(max(n, 3)) * base
    elif mode == ParamMode.PRACTICAL:
        trials = practical_constant * base
    else:
        raise EstimationError(f"unknown parameter mode {mode!r}")
    return max(1, min(cap, math.ceil(trials)))


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth; infinity when the truth is zero."""
    if truth == 0:
        return math.inf if estimate != 0 else 0.0
    return abs(estimate - truth) / truth


def median_of_means(values: Sequence[float], groups: int) -> float:
    """Median of *groups* equal-size block means.

    Standard variance-to-high-probability amplification; the ERS
    estimator uses a plain median over Θ(log n) repetitions
    (Algorithm 2) and experiments use this for baseline sketches.
    """
    if not values:
        raise EstimationError("median_of_means of an empty sequence")
    if groups < 1:
        raise EstimationError(f"groups must be >= 1, got {groups}")
    groups = min(groups, len(values))
    block = len(values) // groups
    means: List[float] = []
    for g in range(groups):
        chunk = values[g * block : (g + 1) * block]
        if chunk:
            means.append(sum(chunk) / len(chunk))
    return statistics.median(means)


def wilson_interval(successes: int, trials: int, z: float = 2.0) -> tuple:
    """Wilson score interval for a Bernoulli rate.

    Used by experiment tables to attach uncertainty to measured
    success probabilities (e.g. the E1 per-copy rates).
    """
    if trials <= 0:
        raise EstimationError(f"trials must be positive, got {trials}")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))
