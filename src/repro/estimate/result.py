"""Uniform result record for every counting algorithm in the library.

Streaming counters, query-model counters and baselines all return an
:class:`EstimateResult`, so experiments and examples can tabulate them
interchangeably: estimate, trials, passes, and accounted space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.estimate.concentration import relative_error


@dataclass
class EstimateResult:
    """Outcome of one estimator run."""

    algorithm: str
    pattern: str
    estimate: float
    passes: int = 0
    space_words: int = 0
    trials: int = 0
    successes: int = 0
    m: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    def error_vs(self, truth: float) -> float:
        """Relative error against an exact count."""
        return relative_error(self.estimate, truth)

    def within(self, truth: float, epsilon: float) -> bool:
        """Whether the estimate is a (1±ε)-approximation of *truth*."""
        return self.error_vs(truth) <= epsilon

    def summary(self, truth: Optional[float] = None) -> str:
        """One-line human-readable summary for experiment logs."""
        parts = [
            f"{self.algorithm}[{self.pattern}]",
            f"est={self.estimate:.1f}",
            f"passes={self.passes}",
            f"space={self.space_words}w",
            f"trials={self.trials}",
        ]
        if truth is not None:
            parts.append(f"err={self.error_vs(truth):.3f}")
        return " ".join(parts)
