"""Estimation toolkit: trial budgets, concentration, result records."""

from repro.estimate.concentration import (
    chernoff_trials,
    median_of_means,
    relative_error,
    wilson_interval,
)
from repro.estimate.result import EstimateResult
from repro.estimate.search import geometric_search

__all__ = [
    "chernoff_trials",
    "median_of_means",
    "relative_error",
    "wilson_interval",
    "EstimateResult",
    "geometric_search",
]
