"""Direct (in-memory) oracles: the sublinear-time query model.

These answer queries against a fully materialized graph, the way a
sublinear-time algorithm would access its input.  They are the
reference implementations the stream emulators are compared to —
Theorems 9/11 say the emulators produce the same output distribution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import OracleError
from repro.graph.graph import Graph
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.utils.rng import RandomSource, ensure_rng


class DirectAugmentedOracle:
    """The augmented general graph model (Definition 6) over a graph.

    Parameters
    ----------
    graph:
        The input graph.
    rng:
        Randomness for f1 edge samples (and f3 in the relaxed
        subclass).

    Notes
    -----
    The i-th neighbor (f3) is served in the graph's adjacency-list
    insertion order.  Building the graph in stream arrival order makes
    the direct oracle's f3 answers coincide with the Theorem 9
    emulation, which tests exploit.
    """

    def __init__(self, graph: Graph, rng: RandomSource = None) -> None:
        self._graph = graph
        self._rng = ensure_rng(rng)
        self.accounting = QueryAccounting()

    @property
    def graph(self) -> Graph:
        return self._graph

    # -- single-query answers ------------------------------------------

    def random_edge(self) -> Optional[Sequence[int]]:
        """f1: a uniformly random edge (None only on an empty graph)."""
        if self._graph.m == 0:
            return None
        return self._graph.edge_at(self._rng.randrange(self._graph.m))

    def degree(self, vertex: int) -> int:
        """f2."""
        return self._graph.degree(vertex)

    def neighbor(self, vertex: int, index: int) -> Optional[int]:
        """f3 (augmented): i-th neighbor, None when out of range."""
        if index < 0:
            raise OracleError(f"neighbor index must be >= 0, got {index}")
        if index >= self._graph.degree(vertex):
            return None
        return self._graph.neighbor_at(vertex, index)

    def random_neighbor(self, vertex: int) -> Optional[int]:
        """f3 (relaxed flavor): only valid on the relaxed oracle."""
        raise OracleError(
            "RandomNeighborQuery belongs to the relaxed model; use DirectRelaxedOracle"
        )

    def adjacent(self, u: int, v: int) -> bool:
        """f4."""
        return self._graph.has_edge(u, v)

    def edge_count(self) -> int:
        """m (assumed known in the query model)."""
        return self._graph.m

    # -- batch protocol ---------------------------------------------------

    def answer(self, query: Query):
        """Answer a single query object."""
        self.accounting.record(query)
        if isinstance(query, RandomEdgeQuery):
            return self.random_edge()
        if isinstance(query, DegreeQuery):
            return self.degree(query.vertex)
        if isinstance(query, NeighborQuery):
            return self.neighbor(query.vertex, query.index)
        if isinstance(query, RandomNeighborQuery):
            return self.random_neighbor(query.vertex)
        if isinstance(query, AdjacencyQuery):
            return self.adjacent(query.u, query.v)
        if isinstance(query, EdgeCountQuery):
            return self.edge_count()
        raise OracleError(f"unknown query type {type(query).__name__}")

    def answer_batch(self, batch: QueryBatch) -> List:
        """Answer one round's batch, positionally."""
        return [self.answer(query) for query in batch]


class DirectGeneralOracle(DirectAugmentedOracle):
    """The general graph model: Definition 6 *without* f1.

    The original ERS algorithm was stated in this model; the paper's
    simplification (Section 5.1) moves to the augmented model, and the
    difference is observable here.
    """

    def random_edge(self) -> Optional[Sequence[int]]:
        raise OracleError("the general graph model does not support random edge queries (f1)")


class DirectRelaxedOracle(DirectAugmentedOracle):
    """The relaxed augmented model (Definition 10), idealized.

    The defining relaxations are *allowed* error and failure; an
    exactly uniform implementation is a legal instance, and it is the
    cleanest reference point for the turnstile emulator (whose ℓ0-
    samplers realize the same queries with 1/n^c slack).  A failure
    probability can be injected to exercise failure handling.
    """

    def __init__(
        self, graph: Graph, rng: RandomSource = None, failure_probability: float = 0.0
    ) -> None:
        super().__init__(graph, rng)
        if not 0.0 <= failure_probability < 1.0:
            raise OracleError(
                f"failure probability must be in [0, 1), got {failure_probability}"
            )
        self._failure_probability = failure_probability

    def _fails(self) -> bool:
        return self._failure_probability > 0.0 and self._rng.random() < self._failure_probability

    def random_edge(self) -> Optional[Sequence[int]]:
        if self._fails():
            return None
        return super().random_edge()

    def random_neighbor(self, vertex: int) -> Optional[int]:
        """f3 (relaxed): a uniformly random neighbor, or None."""
        if self._fails():
            return None
        degree = self._graph.degree(vertex)
        if degree == 0:
            return None
        return self._graph.neighbor_at(vertex, self._rng.randrange(degree))

    def neighbor(self, vertex: int, index: int) -> Optional[int]:
        raise OracleError(
            "indexed neighbor queries are not part of the relaxed model (Definition 10)"
        )
