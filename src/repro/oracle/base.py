"""Query types of the (relaxed) augmented general graph model.

Definition 6 allows four query types on a graph G = (V, E):

* f1 — return a uniformly random edge;
* f2(v) — return the degree of v;
* f3(v, i) — return the i-th neighbor of v;
* f4(u, v) — return whether (u, v) ∈ E.

Definition 10 (the relaxed model, used for turnstile streams) replaces
f1 with an approximately uniform edge sample that may fail, and f3
with an approximately uniform random *neighbor* query.

A round-adaptive algorithm (Definition 8) communicates with an oracle
exclusively through *batches* of these query objects: it yields one
batch per round and receives positionally matching answers.  Both the
direct oracles (:mod:`repro.oracle.direct`) and the stream emulators
(:mod:`repro.transform`) answer the same query objects — that shared
vocabulary is the transformation of Theorems 9/11.

All query types are frozen dataclasses of plain ints, so batches (and
their answers: ints, bools, vertex/edge tuples, ``None``) are cheaply
picklable.  The process backend (:mod:`repro.engine.parallel`) keeps
query traffic worker-local today — only estimator *specs* and decoded
stream batches cross the boundary — but this property is what a
future distributed oracle (queries shipped to a remote answering
service) would rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union


@dataclass(frozen=True)
class RandomEdgeQuery:
    """f1: a uniformly random edge.  Answer: ``(u, v)`` or ``None``.

    In the augmented model the answer is exactly uniform and never
    fails; in the relaxed model it is near-uniform and may be ``None``.
    """


@dataclass(frozen=True)
class DegreeQuery:
    """f2: the degree of *vertex*.  Answer: ``int``."""

    vertex: int


@dataclass(frozen=True)
class NeighborQuery:
    """f3 (augmented): the *index*-th neighbor of *vertex* (0-based).

    Answer: neighbor id, or ``None`` when ``index >= degree``.
    Definition 6 requires ``i ∈ [dg(v)]``; we return ``None`` for
    out-of-range indices instead of raising, because the FGP sampler
    deliberately draws the index from [√(2m)] *before* knowing the
    degree and treats an out-of-range draw as a failed sample.
    """

    vertex: int
    index: int


@dataclass(frozen=True)
class RandomNeighborQuery:
    """f3 (relaxed): a near-uniform random neighbor of *vertex*.

    Answer: neighbor id or ``None`` (failure / isolated vertex).
    """

    vertex: int


@dataclass(frozen=True)
class AdjacencyQuery:
    """f4: whether the edge {u, v} is present.  Answer: ``bool``."""

    u: int
    v: int


@dataclass(frozen=True)
class EdgeCountQuery:
    """The number of edges m.

    The sublinear-time literature assumes m is known; a streaming
    algorithm obtains it by counting during its first pass.  Modelled
    as an explicit query so the transformation stays mechanical.
    """


Query = Union[
    RandomEdgeQuery,
    DegreeQuery,
    NeighborQuery,
    RandomNeighborQuery,
    AdjacencyQuery,
    EdgeCountQuery,
]

QueryBatch = Sequence[Query]


@dataclass
class QueryAccounting:
    """Counts queries by type; ``q`` drives the space bound O(q log n)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, query: Query) -> None:
        self.record_batch((query,))

    def record_batch(self, batch: QueryBatch) -> None:
        counts = self.counts
        get = counts.get
        for query in batch:
            name = type(query).__name__
            counts[name] = get(name, 0) + 1

    @property
    def total(self) -> int:
        """Total number of queries asked so far."""
        return sum(self.counts.values())

    def by_type(self) -> Dict[str, int]:
        return dict(self.counts)

    def state_dict(self) -> Dict[str, int]:
        """The per-type counters (checkpoint protocol)."""
        return dict(self.counts)

    def load_state_dict(self, state: Dict[str, int]) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        self.counts = {str(k): int(v) for k, v in dict(state).items()}
