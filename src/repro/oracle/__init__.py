"""Query-access models for graphs (Definitions 6 and 10)."""

from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.oracle.direct import (
    DirectAugmentedOracle,
    DirectGeneralOracle,
    DirectRelaxedOracle,
)

__all__ = [
    "Query",
    "RandomEdgeQuery",
    "DegreeQuery",
    "NeighborQuery",
    "RandomNeighborQuery",
    "AdjacencyQuery",
    "EdgeCountQuery",
    "QueryAccounting",
    "DirectAugmentedOracle",
    "DirectGeneralOracle",
    "DirectRelaxedOracle",
]
