"""Sketching substrate: hashing, 1-sparse recovery, ℓ0-samplers, reservoirs."""

from repro.sketch.hashing import PolynomialHash
from repro.sketch.onesparse import OneSparseRecovery
from repro.sketch.l0 import L0Sampler
from repro.sketch.reservoir import ReservoirSampler, SingleReservoir

__all__ = [
    "PolynomialHash",
    "OneSparseRecovery",
    "L0Sampler",
    "ReservoirSampler",
    "SingleReservoir",
]
