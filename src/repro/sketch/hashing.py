"""k-wise independent hashing via random polynomials.

Evaluation of a random degree-(k-1) polynomial over the Mersenne
prime field GF(2^61 - 1) gives a k-wise independent family; the ℓ0-
sampler's level assignment and fingerprint verification both build on
it.  Python integers make the modular arithmetic exact and simple.
"""

from __future__ import annotations

from typing import List

from repro.utils.rng import RandomSource, ensure_rng

#: The Mersenne prime 2^61 - 1.
MERSENNE_PRIME = (1 << 61) - 1


class PolynomialHash:
    """A k-wise independent hash function h: [universe] -> [0, prime).

    Parameters
    ----------
    independence:
        k — the degree of independence (polynomial degree k-1).
    rng:
        Randomness for the coefficients.

    Notes
    -----
    ``value`` returns the raw field element; convenience mappers
    reduce it to a range, a unit float, or a geometric level.
    """

    __slots__ = ("_coefficients",)

    def __init__(self, independence: int, rng: RandomSource = None) -> None:
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        random_state = ensure_rng(rng)
        # Leading coefficient non-zero keeps the polynomial degree exact.
        coefficients: List[int] = [
            random_state.randrange(MERSENNE_PRIME) for _ in range(independence - 1)
        ]
        coefficients.append(1 + random_state.randrange(MERSENNE_PRIME - 1))
        self._coefficients = tuple(coefficients)

    @property
    def independence(self) -> int:
        return len(self._coefficients)

    def value(self, item: int) -> int:
        """Raw hash value in ``[0, MERSENNE_PRIME)`` (Horner evaluation)."""
        accumulator = 0
        x = item % MERSENNE_PRIME
        for coefficient in reversed(self._coefficients):
            accumulator = (accumulator * x + coefficient) % MERSENNE_PRIME
        return accumulator

    def to_range(self, item: int, size: int) -> int:
        """Hash reduced to ``[0, size)`` (negligible modular bias)."""
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        return self.value(item) % size

    def to_unit(self, item: int) -> float:
        """Hash as a float in ``[0, 1)``."""
        return self.value(item) / MERSENNE_PRIME

    def level(self, item: int, max_level: int) -> int:
        """Geometric level: ``P(level >= l) = 2^-l``, capped at *max_level*.

        Level l contains the item iff the top l bits of the hash are
        zero — the standard ℓ0-sampler subsampling scheme.
        """
        raw = self.value(item)
        level = 0
        threshold = MERSENNE_PRIME
        while level < max_level:
            threshold //= 2
            if raw >= threshold:
                break
            level += 1
        return level
