"""k-wise independent hashing via random polynomials.

Evaluation of a random degree-(k-1) polynomial over the Mersenne
prime field GF(2^61 - 1) gives a k-wise independent family; the ℓ0-
sampler's level assignment and fingerprint verification both build on
it.  Python integers make the modular arithmetic exact and simple.

Two evaluation paths share the same coefficients:

* the scalar path (:meth:`PolynomialHash.value`) — exact Python-int
  Horner, kept as the bit-equality reference;
* the columnar path (:meth:`PolynomialHash.values_many`) — numpy
  Horner over ``uint64`` arrays, where each modular product is
  computed exactly via 32-bit limb splitting (:func:`mulmod_vec`).
  ``2^61 ≡ 1 (mod p)`` makes the limb recombination a few shifts.

Both paths return identical field elements for identical inputs; the
fuzz tests in ``tests/test_vectorized_equivalence.py`` pin this down.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import MergeError
from repro.utils.checkpoint import check_merge_config, check_state_config, state_field
from repro.utils.rng import RandomSource, ensure_rng

#: The Mersenne prime 2^61 - 1.
MERSENNE_PRIME = (1 << 61) - 1

_P = np.uint64(MERSENNE_PRIME)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)
_U3 = np.uint64(3)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)


def mulmod_vec(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a * b) mod (2^61 - 1)`` on ``uint64`` operands < p.

    A 61-bit product does not fit in 64 bits, so each factor is split
    into 32-bit limbs; ``2^64 ≡ 8`` and ``2^61 ≡ 1 (mod p)`` fold the
    partial products back without ever exceeding ``uint64``:

    ``a·b = hh·2^64 + mid·2^32 + ll`` with ``hh = a_hi·b_hi`` (< 2^58),
    ``mid = a_hi·b_lo + a_lo·b_hi`` (< 2^62), ``ll = a_lo·b_lo``.
    ``mid·2^32 = (mid >> 29)·2^61 + (mid mod 2^29)·2^32 ≡
    (mid >> 29) + (mid mod 2^29)·2^32``.
    """
    a_hi = a >> _U32
    a_lo = a & _MASK32
    b_hi = b >> _U32
    b_lo = b & _MASK32
    hh = a_hi * b_hi
    mid = a_hi * b_lo + a_lo * b_hi
    ll = a_lo * b_lo
    out = (
        (hh << _U3)
        + (mid >> _U29)
        + ((mid & _MASK29) << _U32)
        + (ll >> _U61)
        + (ll & _P)
    )
    out = (out >> _U61) + (out & _P)
    return np.where(out >= _P, out - _P, out)


def addmod_vec(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a + b) mod (2^61 - 1)`` on ``uint64`` operands < p."""
    out = a + b
    return np.where(out >= _P, out - _P, out)


def powmod_vec(base: int, exponents: np.ndarray) -> np.ndarray:
    """``base ** exponents mod (2^61 - 1)`` for a scalar base < p.

    Square-and-multiply with the squarings precomputed as Python ints
    (the base is shared), so the per-bit work is one masked
    :func:`mulmod_vec` over the batch.
    """
    exponents = np.ascontiguousarray(exponents, dtype=np.uint64)
    result = np.ones_like(exponents)
    if not exponents.size:
        return result
    max_exponent = int(exponents.max())
    square = base % MERSENNE_PRIME
    bit = 0
    one = np.uint64(1)
    while (max_exponent >> bit) and square != 1:
        mask = (exponents >> np.uint64(bit)) & one
        if mask.any():
            result = np.where(
                mask.astype(bool), mulmod_vec(result, np.uint64(square)), result
            )
        square = (square * square) % MERSENNE_PRIME
        bit += 1
    return result


class PolynomialHash:
    """A k-wise independent hash function h: [universe] -> [0, prime).

    Parameters
    ----------
    independence:
        k — the degree of independence (polynomial degree k-1).
    rng:
        Randomness for the coefficients.

    Notes
    -----
    ``value`` returns the raw field element; convenience mappers
    reduce it to a range, a unit float, or a geometric level.
    Coefficients are stored highest-degree first, so Horner evaluation
    walks them in storage order (no per-call ``reversed()``).
    """

    __slots__ = ("_coefficients", "_coefficients_vec")

    def __init__(self, independence: int, rng: RandomSource = None) -> None:
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        random_state = ensure_rng(rng)
        # Leading coefficient non-zero keeps the polynomial degree exact.
        coefficients: List[int] = [
            random_state.randrange(MERSENNE_PRIME) for _ in range(independence - 1)
        ]
        coefficients.append(1 + random_state.randrange(MERSENNE_PRIME - 1))
        # Highest-degree first: exactly the order Horner consumes.
        self._coefficients = tuple(reversed(coefficients))
        self._coefficients_vec = np.array(self._coefficients, dtype=np.uint64)

    @property
    def independence(self) -> int:
        return len(self._coefficients)

    def merge(self, other: "PolynomialHash") -> None:
        """Merge-compatibility check: hash functions carry no aggregates.

        A hash function is frozen randomness, so "merging" two of them
        is a no-op — but only when they are the *same* function.  Two
        shards hashed with different coefficient vectors placed items
        at different ℓ0 levels, and their level sketches must never be
        added; a coefficient mismatch raises
        :class:`~repro.errors.MergeError` naming the field.
        """
        if not isinstance(other, PolynomialHash):
            raise MergeError(
                f"cannot merge PolynomialHash with {type(other).__name__}"
            )
        check_merge_config(
            "PolynomialHash",
            independence=(self.independence, other.independence),
            coefficients=(self._coefficients, other._coefficients),
        )

    def state_dict(self) -> dict:
        """The drawn coefficients (a hash function is frozen randomness)."""
        return {
            "independence": self.independence,
            "coefficients": tuple(self._coefficients),
        }

    def load_state_dict(self, state: dict) -> None:
        """Adopt a captured coefficient vector of the same independence."""
        check_state_config("PolynomialHash", state, independence=self.independence)
        coefficients = tuple(
            int(c) for c in state_field("PolynomialHash", state, "coefficients")
        )
        self._coefficients = coefficients
        self._coefficients_vec = np.array(coefficients, dtype=np.uint64)

    def value(self, item: int) -> int:
        """Raw hash value in ``[0, MERSENNE_PRIME)`` (Horner evaluation)."""
        accumulator = 0
        x = item % MERSENNE_PRIME
        for coefficient in self._coefficients:
            accumulator = (accumulator * x + coefficient) % MERSENNE_PRIME
        return accumulator

    def values_many(self, items) -> np.ndarray:
        """Raw hash values for a batch of items, as a ``uint64`` array.

        Bit-identical to calling :meth:`value` per item: the batched
        Horner runs the same exact field arithmetic via
        :func:`mulmod_vec`.
        """
        x = np.ascontiguousarray(items, dtype=np.uint64) % _P
        coefficients = self._coefficients_vec
        accumulator = np.full_like(x, coefficients[0])
        for coefficient in coefficients[1:]:
            accumulator = addmod_vec(mulmod_vec(accumulator, x), coefficient)
        return accumulator

    def to_range(self, item: int, size: int) -> int:
        """Hash reduced to ``[0, size)`` (negligible modular bias)."""
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        return self.value(item) % size

    def to_unit(self, item: int) -> float:
        """Hash as a float in ``[0, 1)``."""
        return self.value(item) / MERSENNE_PRIME

    def level(self, item: int, max_level: int) -> int:
        """Geometric level: ``P(level >= l) = 2^-l``, capped at *max_level*.

        Level l contains the item iff the top l bits of the hash are
        zero — the standard ℓ0-sampler subsampling scheme.
        """
        raw = self.value(item)
        level = 0
        threshold = MERSENNE_PRIME
        while level < max_level:
            threshold //= 2
            if raw >= threshold:
                break
            level += 1
        return level

    def levels_many(self, items, max_level: int) -> np.ndarray:
        """Geometric levels for a batch of items (matches :meth:`level`).

        The scalar loop halves ``MERSENNE_PRIME`` down and stops at the
        first threshold the hash reaches, so ``level = #{k in [1,
        max_level] : raw < p >> k}`` (the thresholds are decreasing, so
        the satisfied set is a prefix).  A ``searchsorted`` against the
        ascending threshold array counts that prefix per item.
        """
        raw = self.values_many(items)
        if max_level < 1:
            return np.zeros_like(raw, dtype=np.int64)
        thresholds = np.array(
            [MERSENNE_PRIME >> k for k in range(max_level, 0, -1)], dtype=np.uint64
        )
        below = np.searchsorted(thresholds, raw, side="right")
        return (max_level - below).astype(np.int64)


def split_sum(values: np.ndarray) -> int:
    """Exact Python-int sum of a ``uint64`` array of values < 2^61.

    ``np.sum`` on ``uint64`` silently wraps once the total passes
    2^64 (nine 61-bit terms suffice); summing the 32-bit limbs
    separately keeps every partial sum far below the wrap for any
    realistic batch, and the recombination is exact Python-int math.
    """
    if not values.size:
        return 0
    high = int((values >> _U32).sum(dtype=np.uint64))
    low = int((values & _MASK32).sum(dtype=np.uint64))
    return (high << 32) + low
