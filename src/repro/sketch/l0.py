"""ℓ0-sampling for turnstile streams (Lemma 7, Cormode–Firmani).

An :class:`L0Sampler` returns a (near-)uniform non-zero coordinate of
a signed vector maintained under insertions and deletions.  Structure:

* ``levels`` geometric sub-sampling levels; a k-wise independent hash
  assigns every coordinate its maximum level (P(level >= l) = 2^-l);
* one :class:`OneSparseRecovery` per level;
* query: scan levels bottom-up and return the first successful
  recovery.  At the level where the expected number of surviving
  coordinates is Θ(1), recovery succeeds with constant probability;
  ``repetitions`` independent copies drive the failure probability
  down geometrically, matching Lemma 7's 1 - 1/n^c guarantee.

The paper uses ℓ0-samplers in two places (proof of Theorem 11): a
sampler over the adjacency-matrix vector emulates f1 (uniform edge),
and a sampler over one adjacency-list column emulates f3 (uniform
neighbor).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import SketchError
from repro.sketch.hashing import MERSENNE_PRIME as _PRIME
from repro.sketch.hashing import PolynomialHash
from repro.sketch.onesparse import OneSparseRecovery
from repro.utils.rng import RandomSource, derive_rng, ensure_rng

_HASH_INDEPENDENCE = 8


class L0Sampler:
    """Near-uniform sampler over the support of a turnstile vector.

    Parameters
    ----------
    universe:
        Coordinates are integers in ``[0, universe)``.
    rng:
        Source for hash functions and recovery fingerprints.
    repetitions:
        Independent copies; failure probability decays as
        ``2^-repetitions`` at the critical level.
    levels:
        Number of sub-sampling levels; defaults to ``log2(universe)+2``.
    """

    def __init__(
        self,
        universe: int,
        rng: RandomSource = None,
        repetitions: int = 8,
        levels: Optional[int] = None,
    ) -> None:
        if universe <= 0:
            raise SketchError(f"universe must be positive, got {universe}")
        if repetitions < 1:
            raise SketchError(f"repetitions must be >= 1, got {repetitions}")
        random_state = ensure_rng(rng)
        self._universe = universe
        self._levels = levels if levels is not None else max(2, int(math.log2(universe)) + 2)
        self._repetitions = repetitions
        self._hashes: List[PolynomialHash] = []
        self._sketches: List[List[OneSparseRecovery]] = []
        self._bases: List[int] = []
        for repetition in range(repetitions):
            child = derive_rng(random_state, f"l0-rep-{repetition}")
            self._hashes.append(PolynomialHash(_HASH_INDEPENDENCE, child))
            # All levels of one repetition share a fingerprint base so
            # an update needs a single modular exponentiation.
            probe = OneSparseRecovery(universe, child)
            self._bases.append(probe.z)
            self._sketches.append(
                [OneSparseRecovery(universe, z=probe.z) for _ in range(self._levels + 1)]
            )

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def space_words(self) -> int:
        """Accounted words: recovery sketches plus hash coefficients."""
        per_repetition = (self._levels + 1) * OneSparseRecovery.WORDS + _HASH_INDEPENDENCE
        return self._repetitions * per_repetition

    def update(self, item: int, delta: int) -> None:
        """Apply ``x[item] += delta`` to every repetition."""
        if not 0 <= item < self._universe:
            raise SketchError(f"item {item} outside universe [0, {self._universe})")
        for hash_function, sketch_levels, base in zip(
            self._hashes, self._sketches, self._bases
        ):
            item_level = hash_function.level(item, self._levels)
            z_power = pow(base, item, _PRIME)
            # The item participates in levels 0..item_level.
            for level in range(item_level + 1):
                sketch_levels[level].update_with_power(item, delta, z_power)

    def update_many(self, updates: Sequence[Tuple[int, int]]) -> None:
        """Apply a batch of ``(item, delta)`` updates to every repetition.

        Equivalent to calling :meth:`update` per pair (the sketches are
        linear), but iterates repetition-major so per-repetition lookups
        are paid once per batch instead of once per element.
        """
        universe = self._universe
        levels = self._levels
        for item, _ in updates:
            if not 0 <= item < universe:
                raise SketchError(f"item {item} outside universe [0, {universe})")
        for hash_function, sketch_levels, base in zip(
            self._hashes, self._sketches, self._bases
        ):
            level_of = hash_function.level
            for item, delta in updates:
                item_level = level_of(item, levels)
                z_power = pow(base, item, _PRIME)
                for level in range(item_level + 1):
                    sketch_levels[level].update_with_power(item, delta, z_power)

    def sample(self) -> Optional[int]:
        """A (near-)uniform member of the support, or ``None`` on failure.

        Scans levels from the sparsest (highest) down within each
        repetition and returns the first verified recovery; ``None``
        means every repetition failed, which for a correctly sized
        sampler happens with probability ≈ 2^-repetitions.
        """
        for hash_function, sketch_levels in zip(self._hashes, self._sketches):
            del hash_function
            for level in range(self._levels, -1, -1):
                recovered = sketch_levels[level].recover()
                if recovered is not None:
                    return recovered[0]
        return None

    def is_empty(self) -> bool:
        """Whether all repetitions certify an all-zero vector."""
        return all(sketch_levels[0].is_empty for sketch_levels in self._sketches)
