"""ℓ0-sampling for turnstile streams (Lemma 7, Cormode–Firmani).

An :class:`L0Sampler` returns a (near-)uniform non-zero coordinate of
a signed vector maintained under insertions and deletions.  Structure:

* ``levels`` geometric sub-sampling levels; a k-wise independent hash
  assigns every coordinate its maximum level (P(level >= l) = 2^-l);
* one :class:`OneSparseRecovery` per level;
* query: scan levels bottom-up and return the first successful
  recovery.  At the level where the expected number of surviving
  coordinates is Θ(1), recovery succeeds with constant probability;
  ``repetitions`` independent copies drive the failure probability
  down geometrically, matching Lemma 7's 1 - 1/n^c guarantee.

The paper uses ℓ0-samplers in two places (proof of Theorem 11): a
sampler over the adjacency-matrix vector emulates f1 (uniform edge),
and a sampler over one adjacency-list column emulates f3 (uniform
neighbor).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MergeError, SketchError
from repro.sketch.hashing import MERSENNE_PRIME as _PRIME
from repro.sketch.hashing import PolynomialHash, mulmod_vec, powmod_vec
from repro.sketch.onesparse import OneSparseRecovery
from repro.utils.checkpoint import check_merge_config, check_state_config, state_field
from repro.utils.rng import RandomSource, derive_rng, ensure_rng

_HASH_INDEPENDENCE = 8

_MASK32 = np.uint64(0xFFFFFFFF)


class L0Sampler:
    """Near-uniform sampler over the support of a turnstile vector.

    Parameters
    ----------
    universe:
        Coordinates are integers in ``[0, universe)``.
    rng:
        Source for hash functions and recovery fingerprints.
    repetitions:
        Independent copies; failure probability decays as
        ``2^-repetitions`` at the critical level.
    levels:
        Number of sub-sampling levels; defaults to ``log2(universe)+2``.
    """

    def __init__(
        self,
        universe: int,
        rng: RandomSource = None,
        repetitions: int = 8,
        levels: Optional[int] = None,
    ) -> None:
        if universe <= 0:
            raise SketchError(f"universe must be positive, got {universe}")
        if repetitions < 1:
            raise SketchError(f"repetitions must be >= 1, got {repetitions}")
        random_state = ensure_rng(rng)
        self._universe = universe
        self._levels = levels if levels is not None else max(2, int(math.log2(universe)) + 2)
        self._repetitions = repetitions
        self._hashes: List[PolynomialHash] = []
        self._sketches: List[List[OneSparseRecovery]] = []
        self._bases: List[int] = []
        for repetition in range(repetitions):
            child = derive_rng(random_state, f"l0-rep-{repetition}")
            self._hashes.append(PolynomialHash(_HASH_INDEPENDENCE, child))
            # All levels of one repetition share a fingerprint base so
            # an update needs a single modular exponentiation.
            probe = OneSparseRecovery(universe, child)
            self._bases.append(probe.z)
            self._sketches.append(
                [OneSparseRecovery(universe, z=probe.z) for _ in range(self._levels + 1)]
            )

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def space_words(self) -> int:
        """Accounted words: recovery sketches plus hash coefficients."""
        per_repetition = (self._levels + 1) * OneSparseRecovery.WORDS + _HASH_INDEPENDENCE
        return self._repetitions * per_repetition

    def update(self, item: int, delta: int) -> None:
        """Apply ``x[item] += delta`` to every repetition."""
        if not 0 <= item < self._universe:
            raise SketchError(f"item {item} outside universe [0, {self._universe})")
        for hash_function, sketch_levels, base in zip(
            self._hashes, self._sketches, self._bases
        ):
            item_level = hash_function.level(item, self._levels)
            z_power = pow(base, item, _PRIME)
            # The item participates in levels 0..item_level.
            for level in range(item_level + 1):
                sketch_levels[level].update_with_power(item, delta, z_power)

    def update_many(self, updates: Sequence[Tuple[int, int]]) -> None:
        """Apply a batch of ``(item, delta)`` updates to every repetition.

        Equivalent to calling :meth:`update` per pair (the sketches are
        linear), but iterates repetition-major so per-repetition lookups
        are paid once per batch instead of once per element.
        """
        universe = self._universe
        levels = self._levels
        for item, _ in updates:
            if not 0 <= item < universe:
                raise SketchError(f"item {item} outside universe [0, {universe})")
        for hash_function, sketch_levels, base in zip(
            self._hashes, self._sketches, self._bases
        ):
            level_of = hash_function.level
            for item, delta in updates:
                item_level = level_of(item, levels)
                z_power = pow(base, item, _PRIME)
                for level in range(item_level + 1):
                    sketch_levels[level].update_with_power(item, delta, z_power)

    def update_many_arrays(self, items: np.ndarray, deltas: np.ndarray) -> None:
        """Vectorized :meth:`update_many` over parallel numpy arrays.

        Per repetition: one batched Horner assigns every item its level
        (:meth:`~repro.sketch.hashing.PolynomialHash.levels_many`), one
        shared-base :func:`~repro.sketch.hashing.powmod_vec` computes
        the fingerprint powers, and a grouped scatter-add folds the
        batch into the one-sparse counters.  An item at level L updates
        counters 0..L, so per-level aggregates are suffix sums of the
        per-level-value aggregates — O(batch + levels) adds instead of
        O(batch × level) Python calls.  Aggregates are recombined from
        32-bit limbs as exact Python ints, so the result is
        bit-identical to the scalar path.
        """
        if not len(items):
            return
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        # Limb sums stay exact iff max|delta| × batch <= 2^31 (see
        # OneSparseRecovery.update_many_arrays); stream deltas are ±1,
        # so the exact scalar fallback is for API callers only.
        largest = max(-int(deltas.min()), int(deltas.max()))
        if largest * len(deltas) > (1 << 31):
            self.update_many(list(zip(items.tolist(), deltas.tolist())))
            return
        universe = self._universe
        if items.min() < 0 or items.max() >= universe:
            bad = items[(items < 0) | (items >= universe)][0]
            raise SketchError(f"item {int(bad)} outside universe [0, {universe})")
        levels = self._levels
        items_u64 = items.astype(np.uint64)
        # Exact weighted-sum limbs (shared by every repetition).
        item_high = items >> 32
        item_low = items & 0xFFFFFFFF
        for hash_function, sketch_levels, base in zip(
            self._hashes, self._sketches, self._bases
        ):
            item_levels = hash_function.levels_many(items_u64, levels)
            top = int(item_levels.max())
            z_powers = powmod_vec(base, items_u64)
            # Signed fingerprint contribution per update, in [0, p).
            signed = mulmod_vec(
                (deltas % _PRIME).astype(np.uint64), z_powers
            )
            buckets = top + 1
            weight_by = np.zeros(buckets, dtype=np.int64)
            np.add.at(weight_by, item_levels, deltas)
            ws_high_by = np.zeros(buckets, dtype=np.int64)
            np.add.at(ws_high_by, item_levels, deltas * item_high)
            ws_low_by = np.zeros(buckets, dtype=np.int64)
            np.add.at(ws_low_by, item_levels, deltas * item_low)
            fp_high_by = np.zeros(buckets, dtype=np.int64)
            np.add.at(fp_high_by, item_levels, (signed >> np.uint64(32)).astype(np.int64))
            fp_low_by = np.zeros(buckets, dtype=np.int64)
            np.add.at(fp_low_by, item_levels, (signed & _MASK32).astype(np.int64))
            # Suffix sums: level l aggregates every item with level >= l.
            weight_suffix = np.cumsum(weight_by[::-1])[::-1]
            ws_high_suffix = np.cumsum(ws_high_by[::-1])[::-1]
            ws_low_suffix = np.cumsum(ws_low_by[::-1])[::-1]
            fp_high_suffix = np.cumsum(fp_high_by[::-1])[::-1]
            fp_low_suffix = np.cumsum(fp_low_by[::-1])[::-1]
            for level in range(buckets):
                sketch_levels[level].apply_aggregates(
                    int(weight_suffix[level]),
                    (int(ws_high_suffix[level]) << 32) + int(ws_low_suffix[level]),
                    ((int(fp_high_suffix[level]) << 32) + int(fp_low_suffix[level]))
                    % _PRIME,
                )

    def sample(self) -> Optional[int]:
        """A (near-)uniform member of the support, or ``None`` on failure.

        Scans levels from the sparsest (highest) down within each
        repetition and returns the first verified recovery; ``None``
        means every repetition failed, which for a correctly sized
        sampler happens with probability ≈ 2^-repetitions.
        """
        for hash_function, sketch_levels in zip(self._hashes, self._sketches):
            del hash_function
            for level in range(self._levels, -1, -1):
                recovered = sketch_levels[level].recover()
                if recovered is not None:
                    return recovered[0]
        return None

    def is_empty(self) -> bool:
        """Whether all repetitions certify an all-zero vector."""
        return all(sketch_levels[0].is_empty for sketch_levels in self._sketches)

    def merge(self, other: "L0Sampler") -> None:
        """Fold another sampler's sketch state into this one.

        Valid only for *replica* samplers: same universe, levels and
        repetitions, **and** the same frozen randomness (per-repetition
        hash coefficients and fingerprint bases), i.e. both were built
        from the same construction seed.  Then every level's one-sparse
        aggregates add exactly (the sketches are linear over the same
        level assignment), and the merged sampler is bit-identical to
        one that ingested both shards' updates itself.  Any config or
        frozen-randomness mismatch raises
        :class:`~repro.errors.MergeError` naming the field.
        """
        if not isinstance(other, L0Sampler):
            raise MergeError(f"cannot merge L0Sampler with {type(other).__name__}")
        check_merge_config(
            "L0Sampler",
            universe=(self._universe, other._universe),
            levels=(self._levels, other._levels),
            repetitions=(self._repetitions, other._repetitions),
            bases=(self._bases, other._bases),
        )
        for mine, theirs in zip(self._hashes, other._hashes):
            mine.merge(theirs)
        for sketch_levels, other_levels in zip(self._sketches, other._sketches):
            for sketch, other_sketch in zip(sketch_levels, other_levels):
                sketch.merge(other_sketch)

    def state_dict(self) -> dict:
        """Full sampler state: hash coefficients, bases, recovery sketches."""
        return {
            "universe": self._universe,
            "levels": self._levels,
            "repetitions": self._repetitions,
            "bases": list(self._bases),
            "hashes": [h.state_dict() for h in self._hashes],
            "sketches": [
                [sketch.state_dict() for sketch in sketch_levels]
                for sketch_levels in self._sketches
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into an identically configured sampler.

        Restores the *frozen randomness* (hash coefficients, fingerprint
        bases) as well as the linear aggregates, so future updates and
        queries behave exactly as the captured sampler's would.
        """
        check_state_config(
            "L0Sampler",
            state,
            universe=self._universe,
            levels=self._levels,
            repetitions=self._repetitions,
        )
        self._bases = [int(b) for b in state_field("L0Sampler", state, "bases")]
        hash_states = state_field("L0Sampler", state, "hashes")
        sketch_states = state_field("L0Sampler", state, "sketches")
        if len(hash_states) != self._repetitions or len(sketch_states) != self._repetitions:
            raise SketchError(
                f"L0Sampler state carries {len(hash_states)} hash / "
                f"{len(sketch_states)} sketch repetitions for a sampler with "
                f"{self._repetitions}"
            )
        for hash_function, captured in zip(self._hashes, hash_states):
            hash_function.load_state_dict(captured)
        for sketch_levels, captured_levels in zip(self._sketches, sketch_states):
            if len(captured_levels) != len(sketch_levels):
                raise SketchError(
                    f"L0Sampler state carries {len(captured_levels)} levels for "
                    f"a sampler with {len(sketch_levels)}"
                )
            for sketch, captured in zip(sketch_levels, captured_levels):
                sketch.load_state_dict(captured)
