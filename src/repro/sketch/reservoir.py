"""Reservoir sampling for insertion-only streams.

Theorem 9's emulation of query type f1 (uniform random edge) keeps
one reservoir of size 1 per outstanding query; the baselines
(TRIEST-style triangle counting) use the size-k variant.

:class:`SkipAheadReservoirBank` runs many single-item reservoirs over
the *same* stream in O(1) amortized work per element instead of O(K):
instead of flipping a 1/t coin per reservoir per element, each
reservoir pre-draws its next acceptance position (P(S > s | accepted
at t) = t/s, realized by S = ceil(t/u) with u uniform in (0, 1]) and a
min-heap wakes only the reservoirs that accept the current element.
Each reservoir accepts H_m ≈ ln m times, so a pass costs
O(m + K log m log K) instead of O(m·K) — this is what lets Theorem
17's thousands of parallel sampler instances share three passes at
Python speed.  The produced joint distribution is exactly that of K
independent uniform reservoirs.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Generic, Iterable, List, Optional, TypeVar

from repro.errors import MergeError
from repro.utils.checkpoint import (
    check_state_config,
    rng_state,
    set_rng_state,
    state_field,
)
from repro.utils.rng import RandomSource, ensure_rng

T = TypeVar("T")


def _reservoir_merge_error(kind: str) -> MergeError:
    """The shared, documented reason reservoir state never merges.

    A reservoir's acceptance probability at stream position t is 1/t —
    a function of the *global* element count — so per-shard reservoirs
    saw the wrong t for every element and no combination of their
    states is distributed like one reservoir over the concatenated
    stream (the naïve "keep one of the two samples" choice biases
    toward the smaller shard).  This is semantic, not an implementation
    gap: partitioned ingestion must use the linear turnstile/L0 sketch
    paths, whose aggregates add exactly (see
    ``repro.sketch.l0.L0Sampler.merge``).
    """
    return MergeError(
        f"{kind} state cannot be merged: reservoir draws depend on the global "
        "stream order and element count, so per-shard samples are not "
        "distributed as one reservoir over the combined stream; use a "
        "turnstile (L0-sketch) path for partitioned ingestion"
    )


class SingleReservoir(Generic[T]):
    """Uniform single-item reservoir: O(1) words."""

    __slots__ = ("_rng", "_count", "_item")

    def __init__(self, rng: RandomSource = None) -> None:
        self._rng = ensure_rng(rng)
        self._count = 0
        self._item: Optional[T] = None

    def offer(self, item: T) -> None:
        """Present the next stream element."""
        self._count += 1
        if self._rng.randrange(self._count) == 0:
            self._item = item

    def offer_many(self, items: Iterable[T]) -> None:
        """Present a batch of stream elements, in order.

        Consumes exactly the random draws of calling :meth:`offer` per
        element, so a batched run is bit-identical to an element-wise
        one with the same seed.
        """
        randrange = self._rng.randrange
        count = self._count
        for item in items:
            count += 1
            if randrange(count) == 0:
                self._item = item
        self._count = count

    @property
    def count(self) -> int:
        """Number of elements offered so far."""
        return self._count

    @property
    def item(self) -> Optional[T]:
        """The sampled element, or ``None`` if the stream was empty."""
        return self._item

    def merge(self, other: "SingleReservoir") -> None:
        """Always raises: see :func:`_reservoir_merge_error`."""
        raise _reservoir_merge_error("SingleReservoir")

    def state_dict(self) -> dict:
        """Mutable runtime state (count, sample, rng position)."""
        return {"count": self._count, "item": self._item, "rng": rng_state(self._rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture (continuation is bit-identical)."""
        self._count = int(state_field("SingleReservoir", state, "count"))
        self._item = state_field("SingleReservoir", state, "item")
        set_rng_state(self._rng, state_field("SingleReservoir", state, "rng"))


class SkipAheadReservoirBank(Generic[T]):
    """K independent single-item reservoirs with shared skip-ahead.

    Equivalent in distribution to K :class:`SingleReservoir` instances
    offered every element, but the per-element cost is O(#accepting)
    amortized instead of O(K).
    """

    __slots__ = ("_rng", "_items", "_heap", "_seen")

    def __init__(self, count: int, rng: RandomSource = None) -> None:
        if count < 0:
            raise ValueError(f"reservoir count must be >= 0, got {count}")
        self._rng = ensure_rng(rng)
        self._items: List[Optional[T]] = [None] * count
        # Every reservoir accepts the first element (index 1).
        self._heap: List[tuple] = [(1, slot) for slot in range(count)]
        heapq.heapify(self._heap)
        self._seen = 0

    def offer(self, item: T) -> None:
        """Present the next stream element to all reservoirs."""
        self._seen += 1
        t = self._seen
        heap = self._heap
        while heap and heap[0][0] == t:
            _, slot = heapq.heappop(heap)
            self._items[slot] = item
            # Next acceptance S: P(S > s) = t/s  <=>  S = ceil(t/u),
            # u uniform in (0, 1]; the max() guards the u == 1 corner.
            u = 1.0 - self._rng.random()
            next_accept = max(t + 1, math.ceil(t / u))
            heapq.heappush(heap, (next_accept, slot))

    def offer_many(self, items) -> None:
        """Present a batch of stream elements, in order.

        The hot-path entry point for the fused engine, with full
        skip-ahead: the heap already knows every reservoir's next
        acceptance position, so the batch is consumed by jumping from
        acceptance to acceptance — elements in between are *never
        touched* (a batch that wakes no reservoir costs one comparison
        total, not one per element).  *items* therefore should be
        indexable (lists, numpy-backed edge views); a plain iterable is
        materialized first.  Random draws happen in acceptance order,
        exactly as element-wise :meth:`offer`, so results are
        bit-identical for the same seed.
        """
        if not hasattr(items, "__getitem__"):
            items = list(items)
        length = len(items)
        heap = self._heap
        start = self._seen
        end = start + length
        self._seen = end
        if not heap or heap[0][0] > end:
            return
        items_store = self._items
        rng_random = self._rng.random
        heappop = heapq.heappop
        heappush = heapq.heappush
        ceil = math.ceil
        while heap[0][0] <= end:
            t = heap[0][0]
            item = items[t - start - 1]
            while heap[0][0] == t:
                _, slot = heappop(heap)
                items_store[slot] = item
                u = 1.0 - rng_random()
                next_accept = ceil(t / u)
                if next_accept <= t:
                    next_accept = t + 1
                heappush(heap, (next_accept, slot))

    @property
    def count(self) -> int:
        """Number of elements offered so far."""
        return self._seen

    @property
    def size(self) -> int:
        """Number of reservoirs in the bank."""
        return len(self._items)

    def item(self, slot: int) -> Optional[T]:
        """Current sample of reservoir *slot* (None iff no elements)."""
        return self._items[slot]

    def items(self) -> List[Optional[T]]:
        """All current samples, indexed by slot (do not mutate)."""
        return self._items

    def merge(self, other: "SkipAheadReservoirBank") -> None:
        """Always raises: see :func:`_reservoir_merge_error`."""
        raise _reservoir_merge_error("SkipAheadReservoirBank")

    def state_dict(self) -> dict:
        """Mutable runtime state (samples, acceptance heap, rng position)."""
        return {
            "size": len(self._items),
            "seen": self._seen,
            "items": list(self._items),
            "heap": [tuple(entry) for entry in self._heap],
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into a bank of the same size."""
        check_state_config("SkipAheadReservoirBank", state, size=len(self._items))
        self._seen = int(state_field("SkipAheadReservoirBank", state, "seen"))
        self._items = list(state_field("SkipAheadReservoirBank", state, "items"))
        # The heap was saved in heap order, so no re-heapify is needed.
        self._heap = [tuple(entry) for entry in state_field(
            "SkipAheadReservoirBank", state, "heap"
        )]
        set_rng_state(self._rng, state_field("SkipAheadReservoirBank", state, "rng"))


class ReservoirSampler(Generic[T]):
    """Uniform without-replacement sample of up to *capacity* elements."""

    __slots__ = ("_rng", "_capacity", "_count", "_items")

    def __init__(self, capacity: int, rng: RandomSource = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._rng: random.Random = ensure_rng(rng)
        self._capacity = capacity
        self._count = 0
        self._items: List[T] = []

    def offer(self, item: T) -> Optional[T]:
        """Present the next element; returns the evicted one, if any."""
        self._count += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            return None
        index = self._rng.randrange(self._count)
        if index < self._capacity:
            evicted = self._items[index]
            self._items[index] = item
            return evicted
        return None

    @property
    def count(self) -> int:
        """Number of elements offered so far."""
        return self._count

    @property
    def items(self) -> List[T]:
        """The current sample (do not mutate)."""
        return self._items

    @property
    def capacity(self) -> int:
        return self._capacity

    def contains_all_offered(self) -> bool:
        """Whether nothing has ever been evicted (count <= capacity)."""
        return self._count <= self._capacity

    def merge(self, other: "ReservoirSampler") -> None:
        """Always raises: see :func:`_reservoir_merge_error`."""
        raise _reservoir_merge_error("ReservoirSampler")

    def state_dict(self) -> dict:
        """Mutable runtime state (sample, count, rng position)."""
        return {
            "capacity": self._capacity,
            "count": self._count,
            "items": list(self._items),
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into a sampler of the same capacity."""
        check_state_config("ReservoirSampler", state, capacity=self._capacity)
        self._count = int(state_field("ReservoirSampler", state, "count"))
        self._items = list(state_field("ReservoirSampler", state, "items"))
        set_rng_state(self._rng, state_field("ReservoirSampler", state, "rng"))
