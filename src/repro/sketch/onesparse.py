"""Exact 1-sparse recovery for turnstile streams.

Maintains three aggregates of the signed vector x ∈ Z^universe:

* ``weight``      = Σ_i x_i
* ``weighted_sum``= Σ_i x_i * i
* ``fingerprint`` = Σ_i x_i * z^i  (mod p, random z)

If x is exactly 1-sparse (a single non-zero coordinate i with value
c), then weight = c, weighted_sum = c * i, and the fingerprint equals
c * z^i.  The fingerprint check makes false positives happen with
probability <= universe / p over the choice of z — negligible for
p = 2^61 - 1.  This is the building block of the Cormode–Firmani
ℓ0-sampler (Lemma 7).

All three aggregates are linear in the updates, which is what the
columnar fast path exploits: a batch of updates collapses to one
triple of deltas (:meth:`OneSparseRecovery.apply_aggregates`),
computed vectorized by the caller and bit-identical to replaying the
batch element-wise.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import MergeError
from repro.sketch.hashing import MERSENNE_PRIME, mulmod_vec, powmod_vec, split_sum
from repro.utils.checkpoint import check_merge_config, check_state_config, state_field
from repro.utils.rng import RandomSource, ensure_rng


class OneSparseRecovery:
    """Detects and recovers exactly-1-sparse signed vectors."""

    __slots__ = ("_universe", "_z", "_weight", "_weighted_sum", "_fingerprint")

    #: Words of memory this structure accounts for in the space meter.
    WORDS = 4  # weight, weighted sum, fingerprint, z

    def __init__(
        self, universe: int, rng: RandomSource = None, z: Optional[int] = None
    ) -> None:
        if universe <= 0:
            raise ValueError(f"universe must be positive, got {universe}")
        self._universe = universe
        if z is None:
            z = 2 + ensure_rng(rng).randrange(MERSENNE_PRIME - 2)
        self._z = z
        self._weight = 0
        self._weighted_sum = 0
        self._fingerprint = 0

    @property
    def z(self) -> int:
        """The fingerprint base (shareable across sketches)."""
        return self._z

    def update(self, item: int, delta: int) -> None:
        """Apply ``x[item] += delta``."""
        self.update_with_power(item, delta, pow(self._z, item, MERSENNE_PRIME))

    def update_with_power(self, item: int, delta: int, z_power: int) -> None:
        """Like :meth:`update` with ``z^item mod p`` precomputed.

        Callers that fan one update out to many levels sharing the
        same base ``z`` (the ℓ0-sampler) compute the power once.
        """
        if not 0 <= item < self._universe:
            raise ValueError(f"item {item} outside universe [0, {self._universe})")
        self._weight += delta
        self._weighted_sum += delta * item
        self._fingerprint = (self._fingerprint + delta * z_power) % MERSENNE_PRIME

    def update_many(self, updates: Iterable[Tuple[int, int]]) -> None:
        """Apply a batch of ``(item, delta)`` updates.

        The aggregates are sums, so the batched result equals applying
        :meth:`update` per pair; lookups are hoisted out of the loop.
        This is the scalar reference path — columnar callers use
        :meth:`update_many_arrays`.
        """
        universe = self._universe
        z = self._z
        weight = self._weight
        weighted_sum = self._weighted_sum
        fingerprint = self._fingerprint
        for item, delta in updates:
            if not 0 <= item < universe:
                raise ValueError(f"item {item} outside universe [0, {universe})")
            weight += delta
            weighted_sum += delta * item
            fingerprint = (fingerprint + delta * pow(z, item, MERSENNE_PRIME)) % MERSENNE_PRIME
        self._weight = weight
        self._weighted_sum = weighted_sum
        self._fingerprint = fingerprint

    def update_many_arrays(
        self,
        items: np.ndarray,
        deltas: np.ndarray,
        z_powers: Optional[np.ndarray] = None,
    ) -> None:
        """Vectorized :meth:`update_many` over parallel numpy arrays.

        *items* must already be validated against the universe by the
        caller (the columnar pipeline validates once per batch, not
        once per sketch).  *z_powers* may carry precomputed ``z^item
        mod p`` values (``uint64``); when omitted they are computed
        with :func:`~repro.sketch.hashing.powmod_vec`.  Bit-identical
        to the scalar path: every modular product is exact, and the
        integer aggregates are recombined as Python ints.
        """
        if not len(items):
            return
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        # The limb sums below stay exact iff max|delta| × batch <= 2^31
        # (then Σ|delta·item_lo| <= 2^31·(2^32-1) < 2^63); stream deltas
        # are ±1, so the exact scalar fallback is for API callers only.
        # Min/max as Python ints: np.abs(int64 min) would itself wrap.
        largest = max(-int(deltas.min()), int(deltas.max()))
        if largest * len(deltas) > (1 << 31):
            self.update_many(zip(items.tolist(), deltas.tolist()))
            return
        if z_powers is None:
            z_powers = powmod_vec(self._z, items.astype(np.uint64))
        # Signed modular contribution per update: delta * z^item mod p,
        # with delta folded into the field ((-1) mod p = p - 1).
        signed = mulmod_vec(
            (deltas % MERSENNE_PRIME).astype(np.uint64), z_powers
        )
        fingerprint_delta = split_sum(signed) % MERSENNE_PRIME
        # Exact weighted sum via 32-bit limb split: items < 2^62, so
        # delta * (item >> 32) stays far below int64 overflow for any
        # realistic batch length.
        high = int((deltas * (items >> 32)).sum(dtype=np.int64))
        low = int((deltas * (items & 0xFFFFFFFF)).sum(dtype=np.int64))
        self.apply_aggregates(
            int(deltas.sum(dtype=np.int64)), (high << 32) + low, fingerprint_delta
        )

    def apply_aggregates(
        self, weight_delta: int, weighted_delta: int, fingerprint_delta: int
    ) -> None:
        """Fold pre-aggregated update sums into the sketch.

        By linearity, applying ``(Σ delta, Σ delta·item, Σ delta·z^item
        mod p)`` equals replaying the underlying updates one by one —
        the contract the ℓ0-sampler's grouped scatter-add relies on.
        """
        self._weight += weight_delta
        self._weighted_sum += weighted_delta
        self._fingerprint = (self._fingerprint + fingerprint_delta) % MERSENNE_PRIME

    def merge(self, other: "OneSparseRecovery") -> None:
        """Fold another sketch of the same identity into this one.

        By linearity the merged aggregates equal those of a single
        sketch that ingested both update sequences, in any order —
        the addition is exact Python-int / modular arithmetic, so the
        result is bit-identical to single-stream ingestion.  Both
        sketches must share the universe *and* the fingerprint base
        ``z`` (a fingerprint only composes against the base it was
        accumulated with); a mismatch raises
        :class:`~repro.errors.MergeError`.
        """
        if not isinstance(other, OneSparseRecovery):
            raise MergeError(
                f"cannot merge OneSparseRecovery with {type(other).__name__}"
            )
        check_merge_config(
            "OneSparseRecovery",
            universe=(self._universe, other._universe),
            z=(self._z, other._z),
        )
        self.apply_aggregates(other._weight, other._weighted_sum, other._fingerprint)

    def state_dict(self) -> dict:
        """The three linear aggregates plus the fingerprint base."""
        return {
            "universe": self._universe,
            "z": self._z,
            "weight": self._weight,
            "weighted_sum": self._weighted_sum,
            "fingerprint": self._fingerprint,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture into a sketch over the same universe.

        The fingerprint base ``z`` is part of the captured identity (a
        fingerprint only verifies against the base it was accumulated
        with), so it is restored rather than validated.
        """
        check_state_config("OneSparseRecovery", state, universe=self._universe)
        self._z = int(state_field("OneSparseRecovery", state, "z"))
        self._weight = int(state_field("OneSparseRecovery", state, "weight"))
        self._weighted_sum = int(
            state_field("OneSparseRecovery", state, "weighted_sum")
        )
        self._fingerprint = int(
            state_field("OneSparseRecovery", state, "fingerprint")
        )

    @property
    def is_empty(self) -> bool:
        """Whether the sketch certifies x == 0 (up to fingerprint error)."""
        return self._weight == 0 and self._weighted_sum == 0 and self._fingerprint == 0

    def recover(self) -> Optional[Tuple[int, int]]:
        """Return ``(item, count)`` if the vector is exactly 1-sparse.

        Returns ``None`` when the vector is empty or verifiably not
        1-sparse.  A false positive requires a fingerprint collision
        (probability <= universe/2^61 per query).
        """
        if self._weight == 0:
            return None
        if self._weighted_sum % self._weight != 0:
            return None
        item = self._weighted_sum // self._weight
        if not 0 <= item < self._universe:
            return None
        expected = (self._weight * pow(self._z, item, MERSENNE_PRIME)) % MERSENNE_PRIME
        if expected != self._fingerprint:
            return None
        return item, self._weight
