"""Exact 1-sparse recovery for turnstile streams.

Maintains three aggregates of the signed vector x ∈ Z^universe:

* ``weight``      = Σ_i x_i
* ``weighted_sum``= Σ_i x_i * i
* ``fingerprint`` = Σ_i x_i * z^i  (mod p, random z)

If x is exactly 1-sparse (a single non-zero coordinate i with value
c), then weight = c, weighted_sum = c * i, and the fingerprint equals
c * z^i.  The fingerprint check makes false positives happen with
probability <= universe / p over the choice of z — negligible for
p = 2^61 - 1.  This is the building block of the Cormode–Firmani
ℓ0-sampler (Lemma 7).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.sketch.hashing import MERSENNE_PRIME
from repro.utils.rng import RandomSource, ensure_rng


class OneSparseRecovery:
    """Detects and recovers exactly-1-sparse signed vectors."""

    __slots__ = ("_universe", "_z", "_weight", "_weighted_sum", "_fingerprint")

    #: Words of memory this structure accounts for in the space meter.
    WORDS = 4  # weight, weighted sum, fingerprint, z

    def __init__(
        self, universe: int, rng: RandomSource = None, z: Optional[int] = None
    ) -> None:
        if universe <= 0:
            raise ValueError(f"universe must be positive, got {universe}")
        self._universe = universe
        if z is None:
            z = 2 + ensure_rng(rng).randrange(MERSENNE_PRIME - 2)
        self._z = z
        self._weight = 0
        self._weighted_sum = 0
        self._fingerprint = 0

    @property
    def z(self) -> int:
        """The fingerprint base (shareable across sketches)."""
        return self._z

    def update(self, item: int, delta: int) -> None:
        """Apply ``x[item] += delta``."""
        self.update_with_power(item, delta, pow(self._z, item, MERSENNE_PRIME))

    def update_with_power(self, item: int, delta: int, z_power: int) -> None:
        """Like :meth:`update` with ``z^item mod p`` precomputed.

        Callers that fan one update out to many levels sharing the
        same base ``z`` (the ℓ0-sampler) compute the power once.
        """
        if not 0 <= item < self._universe:
            raise ValueError(f"item {item} outside universe [0, {self._universe})")
        self._weight += delta
        self._weighted_sum += delta * item
        self._fingerprint = (self._fingerprint + delta * z_power) % MERSENNE_PRIME

    def update_many(self, updates: Iterable[Tuple[int, int]]) -> None:
        """Apply a batch of ``(item, delta)`` updates.

        The aggregates are sums, so the batched result equals applying
        :meth:`update` per pair; lookups are hoisted out of the loop.
        """
        universe = self._universe
        z = self._z
        weight = self._weight
        weighted_sum = self._weighted_sum
        fingerprint = self._fingerprint
        for item, delta in updates:
            if not 0 <= item < universe:
                raise ValueError(f"item {item} outside universe [0, {universe})")
            weight += delta
            weighted_sum += delta * item
            fingerprint = (fingerprint + delta * pow(z, item, MERSENNE_PRIME)) % MERSENNE_PRIME
        self._weight = weight
        self._weighted_sum = weighted_sum
        self._fingerprint = fingerprint

    @property
    def is_empty(self) -> bool:
        """Whether the sketch certifies x == 0 (up to fingerprint error)."""
        return self._weight == 0 and self._weighted_sum == 0 and self._fingerprint == 0

    def recover(self) -> Optional[Tuple[int, int]]:
        """Return ``(item, count)`` if the vector is exactly 1-sparse.

        Returns ``None`` when the vector is empty or verifiably not
        1-sparse.  A false positive requires a fingerprint collision
        (probability <= universe/2^61 per query).
        """
        if self._weight == 0:
            return None
        if self._weighted_sum % self._weight != 0:
            return None
        item = self._weighted_sum // self._weight
        if not 0 <= item < self._universe:
            return None
        expected = (self._weight * pow(self._z, item, MERSENNE_PRIME)) % MERSENNE_PRIME
        if expected != self._fingerprint:
            return None
        return item, self._weight
