"""Query-model wrappers around the FGP sampler (Algorithms 9–11).

These drive :func:`repro.fgp.rounds.subgraph_sampler_rounds` against a
direct oracle, giving the sublinear-time algorithms of [FGP20]:

* :func:`sample_subgraph_once` — one attempt (Algorithm 9);
* :func:`sample_subgraph_uniformly` — repeat until success
  (Algorithm 10); conditioned on success the returned copy is
  uniform among all copies, because every copy is returned with the
  same probability 1/(2m)^ρ(H);
* :func:`count_subgraph_query_model` — the biased-coin estimator
  (Algorithm 11): #H ≈ (2m)^ρ(H) × (success fraction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import EstimationError
from repro.fgp.rounds import SampledCopy, SamplerMode, subgraph_sampler_rounds
from repro.oracle.direct import DirectAugmentedOracle, DirectRelaxedOracle
from repro.patterns.pattern import Pattern
from repro.transform.driver import run_round_adaptive
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def _mode_for(oracle) -> str:
    if isinstance(oracle, DirectRelaxedOracle):
        return SamplerMode.RELAXED
    return SamplerMode.AUGMENTED


def sample_subgraph_once(
    oracle: DirectAugmentedOracle, pattern: Pattern, rng: RandomSource = None
) -> Optional[SampledCopy]:
    """One FGP sampling attempt against a direct oracle."""
    generator = subgraph_sampler_rounds(pattern, rng=rng, mode=_mode_for(oracle))
    result = run_round_adaptive([generator], oracle)
    return result.outputs[0]


def sample_subgraph_uniformly(
    oracle: DirectAugmentedOracle,
    pattern: Pattern,
    rng: RandomSource = None,
    attempts: Optional[int] = None,
    copies_lower_bound: int = 1,
) -> Optional[SampledCopy]:
    """Repeat attempts until a copy is found (Algorithm 10).

    The default attempt budget is the paper's
    ``10 * (2m)^ρ(H) / T`` with ``T = copies_lower_bound``; pass
    *attempts* to override.  Returns ``None`` if every attempt fails.
    """
    random_state = ensure_rng(rng)
    if attempts is None:
        m = oracle.edge_count()
        attempts = max(1, math.ceil(10.0 * (2.0 * m) ** pattern.rho() / copies_lower_bound))
    for attempt in range(attempts):
        child = derive_rng(random_state, f"uniform-{attempt}")
        copy = sample_subgraph_once(oracle, pattern, child)
        if copy is not None:
            return copy
    return None


@dataclass
class QueryCountEstimate:
    """Result of the query-model counting estimator."""

    estimate: float
    successes: int
    attempts: int
    m: int
    rho: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0


def count_subgraph_query_model(
    oracle: DirectAugmentedOracle,
    pattern: Pattern,
    attempts: int,
    rng: RandomSource = None,
) -> QueryCountEstimate:
    """Estimate #H via the success rate of *attempts* FGP samples.

    E[successes/attempts] = #H / (2m)^ρ(H) exactly (Lemma 15), so the
    returned estimate is unbiased.  The caller picks the attempt
    budget; Theorem 17's choice is Θ((2m)^ρ ln n / (ε² #H)).
    """
    if attempts < 1:
        raise EstimationError(f"attempts must be >= 1, got {attempts}")
    random_state = ensure_rng(rng)
    mode = _mode_for(oracle)
    generators = [
        subgraph_sampler_rounds(pattern, rng=derive_rng(random_state, i), mode=mode)
        for i in range(attempts)
    ]
    result = run_round_adaptive(generators, oracle)
    successes = sum(1 for output in result.outputs if output is not None)
    m = oracle.edge_count()
    rho = pattern.rho()
    estimate = (successes / attempts) * (2.0 * m) ** rho
    return QueryCountEstimate(
        estimate=estimate, successes=successes, attempts=attempts, m=m, rho=rho
    )
