"""The FGP subgraph sampler [FGP20] and its counting wrappers.

The sampler is implemented once, as a 3-round-adaptive algorithm
(:func:`subgraph_sampler_rounds`); Lemma 16 = "it has 3 rounds".
Driving it against a direct oracle gives the sublinear-time algorithm
of Algorithms 6–9; driving it against a stream oracle gives the 3-pass
streaming samplers of Theorem 17 (insertion-only) and Lemma 18 /
Theorem 1 (turnstile).
"""

from repro.fgp.rounds import subgraph_sampler_rounds, SamplerMode
from repro.fgp.counting import (
    count_subgraph_query_model,
    sample_subgraph_once,
    sample_subgraph_uniformly,
)

__all__ = [
    "subgraph_sampler_rounds",
    "SamplerMode",
    "count_subgraph_query_model",
    "sample_subgraph_once",
    "sample_subgraph_uniformly",
]
