"""The FGP sampler as a 3-round-adaptive algorithm (Lemma 16 / 18).

One execution attempts to sample a single copy of the pattern H and
returns either a frozenset of host edges (the copy) or ``None``.  For
every fixed copy of H in G, the return probability is exactly
1/(2m)^ρ(H) in the augmented model (Lemma 15/16) and (1±o(1)) of that
in the relaxed model (Lemma 18).

Round structure (matching the proof of Lemma 16):

1. f1 edge samples for all decomposition pieces (one *extra* edge per
   odd cycle, used by the high-degree wedge branch) + the edge count;
2. one wedge-completion query per odd cycle — the indexed neighbor
   f3(u, j) with j uniform in [√(2m)] in the augmented model
   (Algorithm 1), or the random-neighbor f3(u) plus an acceptance
   coin in the relaxed model (Algorithm 5);
3. all-pairs adjacency (f4) and degrees (f2) of the sampled vertices.

Postprocessing performs the canonicality checks of Definitions 13–14
and the branch/acceptance coins of SampleWedge (Algorithm 6), then
resolves which copy (if any) the sampled piece-family witnesses,
returning each witnessed copy with probability exactly 1/f_T(H).

Indexing note: the paper's Algorithm 1 writes ⌈c_i/2⌉ + 1 edges per
cycle; for an odd cycle of length c = 2k+1 the sampler needs k path
edges plus one extra edge, i.e. ⌊c/2⌋ + 1 — we follow the ⌊·⌋ reading,
which is the only one consistent with Algorithms 7 and 9.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SketchError
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.order import VertexOrder
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.patterns.canonical import is_canonical_cycle, is_canonical_star
from repro.patterns.isomorphism import enumerate_spanning_copies
from repro.patterns.pattern import Pattern
from repro.utils.rng import RandomSource, ensure_rng

#: A sampled copy of H: the frozenset of its host edges.
SampledCopy = FrozenSet[Edge]


class SamplerMode:
    """Which query dialect the sampler speaks.

    ``AUGMENTED`` uses indexed neighbor queries (Definition 6) and is
    valid for direct oracles and insertion-only streams (Theorem 9).
    ``RELAXED`` uses random-neighbor queries plus an extra acceptance
    coin (Definition 10) and is valid for relaxed direct oracles and
    turnstile streams (Theorem 11).
    """

    AUGMENTED = "augmented"
    RELAXED = "relaxed"


def _orient(edge: Sequence[int], rng) -> Tuple[int, int]:
    """Random orientation: each directed version with probability 1/2.

    Together with a uniform f1 edge sample this yields each *directed*
    edge with probability 1/(2m) — the unit the FGP analysis works in.
    """
    u, v = edge
    return (u, v) if rng.random() < 0.5 else (v, u)


#: Wedge-branch ablation settings (experiment A1): the correct sampler
#: uses BOTH branches of SampleWedge; forcing one shows the bias each
#: branch alone would incur.
WEDGE_BOTH = "both"
WEDGE_LOW_ONLY = "low_only"
WEDGE_HIGH_ONLY = "high_only"


def subgraph_sampler_rounds(
    pattern: Pattern,
    rng: RandomSource = None,
    mode: str = SamplerMode.AUGMENTED,
    wedge_branches: str = WEDGE_BOTH,
    skip_empty_wedge_round: bool = False,
):
    """Generator implementing one FGP sampling attempt in 3 rounds.

    Yields query batches (:mod:`repro.oracle.base` objects) and
    receives answer lists; returns a :data:`SampledCopy` or ``None``.
    Drive it with :func:`repro.transform.run_round_adaptive`.

    *wedge_branches* is an ablation knob: ``"low_only"`` /
    ``"high_only"`` disable one branch of SampleWedge (Algorithm 6),
    which provably biases cycle sampling — experiment A1 measures how.

    *skip_empty_wedge_round* elides round 2 when the Lemma 4
    decomposition of H has no odd cycles (stars issue no wedge
    queries), making the sampler 2-round adaptive for such H — the
    basis of :mod:`repro.streaming.two_pass`.  Off by default so the
    round/pass structure matches Algorithm 1 verbatim.
    """
    if mode not in (SamplerMode.AUGMENTED, SamplerMode.RELAXED):
        raise SketchError(f"unknown sampler mode {mode!r}")
    if wedge_branches not in (WEDGE_BOTH, WEDGE_LOW_ONLY, WEDGE_HIGH_ONLY):
        raise SketchError(f"unknown wedge branch setting {wedge_branches!r}")
    random_state = ensure_rng(rng)
    decomposition = pattern.decomposition()
    cycle_lengths = decomposition.cycle_lengths
    star_petals = decomposition.star_petals
    family_count = pattern.family_count()

    # ---- round 1: edge samples + edge count ---------------------------
    batch1: List[Query] = [EdgeCountQuery()]
    for length in cycle_lengths:
        half = (length - 1) // 2
        batch1.extend(RandomEdgeQuery() for _ in range(half + 1))
    for petals in star_petals:
        batch1.extend(RandomEdgeQuery() for _ in range(petals))
    answers1 = yield batch1

    m = answers1[0]
    if not m:
        return None
    sqrt_2m = math.sqrt(2.0 * m)

    cursor = 1
    cycle_extras: List[Optional[Tuple[int, int]]] = []
    cycle_paths: List[Optional[List[Tuple[int, int]]]] = []
    for length in cycle_lengths:
        half = (length - 1) // 2
        raw = answers1[cursor : cursor + half + 1]
        cursor += half + 1
        if any(edge is None for edge in raw):
            cycle_extras.append(None)
            cycle_paths.append(None)
            continue
        oriented = [_orient(edge, random_state) for edge in raw]
        cycle_extras.append(oriented[0])
        cycle_paths.append(oriented[1:])

    star_edges: List[Optional[List[Tuple[int, int]]]] = []
    for petals in star_petals:
        raw = answers1[cursor : cursor + petals]
        cursor += petals
        if any(edge is None for edge in raw):
            star_edges.append(None)
        else:
            star_edges.append([_orient(edge, random_state) for edge in raw])

    sampling_failed = any(p is None for p in cycle_paths) or any(
        s is None for s in star_edges
    )

    # ---- round 2: wedge completion per cycle --------------------------
    # Queries are issued even for already-failed attempts so the round
    # structure (and hence the pass structure) is input-independent.
    if skip_empty_wedge_round and not cycle_lengths:
        wedge_answers: List[Optional[int]] = []
    else:
        batch2: List[Query] = []
        for path in cycle_paths:
            anchor = path[0][0] if path else 0
            if mode == SamplerMode.AUGMENTED:
                index = int(random_state.random() * sqrt_2m)
                batch2.append(NeighborQuery(anchor, index))
            else:
                batch2.append(RandomNeighborQuery(anchor))
        answers2 = yield batch2
        wedge_answers = list(answers2)

    # ---- round 3: adjacency + degrees of all sampled vertices ---------
    sampled_vertices: List[int] = []
    for extra, path in zip(cycle_extras, cycle_paths):
        if extra is not None:
            sampled_vertices.extend(extra)
        if path is not None:
            for u, v in path:
                sampled_vertices.extend((u, v))
    for edges in star_edges:
        if edges is not None:
            for u, v in edges:
                sampled_vertices.extend((u, v))
    for w in wedge_answers:
        if w is not None:
            sampled_vertices.append(w)
    vertex_pool: List[int] = sorted(set(sampled_vertices))

    batch3: List[Query] = [
        AdjacencyQuery(u, v) for u, v in itertools.combinations(vertex_pool, 2)
    ]
    degree_offset = len(batch3)
    batch3.extend(DegreeQuery(v) for v in vertex_pool)
    answers3 = yield batch3

    if sampling_failed or not vertex_pool:
        return None

    adjacency: Dict[Edge, bool] = {}
    for (u, v), present in zip(itertools.combinations(vertex_pool, 2), answers3):
        adjacency[normalize_edge(u, v)] = bool(present)
    degrees: Dict[int, int] = {
        v: answers3[degree_offset + i] for i, v in enumerate(vertex_pool)
    }

    return _postprocess(
        pattern=pattern,
        mode=mode,
        rng=random_state,
        m=m,
        sqrt_2m=sqrt_2m,
        cycle_extras=cycle_extras,
        cycle_paths=cycle_paths,
        wedge_answers=wedge_answers,
        star_edges=star_edges,
        adjacency=adjacency,
        degrees=degrees,
        family_count=family_count,
        wedge_branches=wedge_branches,
    )


def _postprocess(
    pattern: Pattern,
    mode: str,
    rng,
    m: int,
    sqrt_2m: float,
    cycle_extras: Sequence[Optional[Tuple[int, int]]],
    cycle_paths: Sequence[Optional[List[Tuple[int, int]]]],
    wedge_answers: Sequence[Optional[int]],
    star_edges: Sequence[Optional[List[Tuple[int, int]]]],
    adjacency: Dict[Edge, bool],
    degrees: Dict[int, int],
    family_count: int,
    wedge_branches: str = WEDGE_BOTH,
) -> Optional[SampledCopy]:
    """SampleWedge branches, canonicality checks, and copy resolution."""
    order = VertexOrder(degrees)

    def has_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        return adjacency.get(normalize_edge(u, v), False)

    family_vertices: List[int] = []
    family_edges: List[Edge] = []

    # --- odd cycles (SampleOddCycle + SampleWedge) ----------------------
    for extra, path, wedge in zip(cycle_extras, cycle_paths, wedge_answers):
        assert extra is not None and path is not None
        anchor = path[0][0]  # u_{i,1}: the intended ≺-minimum
        anchor_degree = degrees[anchor]
        if anchor_degree <= sqrt_2m:
            if wedge_branches == WEDGE_HIGH_ONLY:
                return None  # ablation: low branch disabled
            # Low-degree branch: wedge vertex came from the neighbor query.
            if wedge is None:
                return None
            closing = wedge
            if mode == SamplerMode.RELAXED:
                # Convert the uniform neighbor (prob 1/deg) into prob
                # 1/√(2m) via an acceptance coin of deg/√(2m).
                if not rng.random() * sqrt_2m < anchor_degree:
                    return None
        else:
            if wedge_branches == WEDGE_LOW_ONLY:
                return None  # ablation: high branch disabled
            # High-degree branch: the extra edge's head is a degree-
            # proportional vertex sample; thin it to 1/√(2m).
            closing = extra[0]
            if not rng.random() * degrees[closing] < sqrt_2m:
                return None
        sequence: List[int] = []
        for u, v in path:
            sequence.extend((u, v))
        sequence.append(closing)
        if len(set(sequence)) != len(sequence):
            return None
        if not is_canonical_cycle(sequence, order, has_edge):
            return None
        family_vertices.extend(sequence)
        cycle_edge_list = [
            normalize_edge(sequence[i], sequence[(i + 1) % len(sequence)])
            for i in range(len(sequence))
        ]
        family_edges.extend(cycle_edge_list)

    # --- stars (SampleStar) ---------------------------------------------
    for edges in star_edges:
        assert edges is not None
        centers = [u for u, _ in edges]
        petals = [v for _, v in edges]
        if len(set(centers)) != 1:
            return None
        center = centers[0]
        sequence = [center, *petals]
        if len(set(sequence)) != len(sequence):
            return None
        if not is_canonical_star(sequence, order, has_edge):
            return None
        family_vertices.extend(sequence)
        family_edges.extend(normalize_edge(center, petal) for petal in petals)

    # --- piece union must be exactly a |V(H)|-vertex set -----------------
    support = sorted(set(family_vertices))
    if len(support) != pattern.num_vertices or len(support) != len(family_vertices):
        return None

    # --- resolve which copy the family witnesses -------------------------
    local_of = {v: i for i, v in enumerate(support)}
    view = Graph(len(support))
    for u, v in itertools.combinations(support, 2):
        if has_edge(u, v):
            view.add_edge(local_of[u], local_of[v])
    required_local = {
        normalize_edge(local_of[u], local_of[v]) for u, v in family_edges
    }
    candidates = enumerate_spanning_copies(
        view, pattern.graph, list(range(len(support))), required_edges=required_local
    )
    if not candidates:
        return None
    if len(candidates) > family_count:
        raise SketchError(
            f"family witnesses {len(candidates)} copies, exceeding f_T(H) = "
            f"{family_count}; per-copy probability accounting would break"
        )
    candidates.sort(key=sorted)
    slot = int(rng.random() * family_count)
    if slot >= len(candidates):
        return None
    chosen = candidates[slot]
    return frozenset(
        normalize_edge(support[u], support[v]) for u, v in chosen
    )
