"""Degeneracy and core decomposition (Definition 5).

The degeneracy λ of G is the smallest κ such that every subgraph has a
vertex of degree ≤ κ.  Theorem 2's space bound is parameterized by λ,
and the experiment suite (E6, E9) sweeps graph families by their
degeneracy, so we implement the peeling algorithm of Matula and Beck,
which also yields a degeneracy ordering and every vertex's core
number.  We use a lazy-deletion heap: O((n + m) log n), simple and
robust, and never the bottleneck next to the streaming estimators.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.graph.graph import Graph


def core_decomposition(graph: Graph) -> Tuple[List[int], List[int], int]:
    """Compute a degeneracy ordering, core numbers, and λ(G).

    Returns
    -------
    ordering:
        Vertices in degeneracy (peeling) order: each vertex has at
        most λ neighbors *later* in the ordering.
    core_numbers:
        ``core_numbers[v]`` is the largest k such that v belongs to
        the k-core of G.
    degeneracy:
        λ(G) = max core number (0 for edgeless graphs).
    """
    n = graph.n
    if n == 0:
        return [], [], 0

    degree = graph.degrees()
    removed = [False] * n
    heap: List[Tuple[int, int]] = [(degree[v], v) for v in range(n)]
    heapq.heapify(heap)

    core_numbers = [0] * n
    ordering: List[int] = []
    current_core = 0

    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue  # stale entry superseded by a later decrement
        removed[v] = True
        current_core = max(current_core, d)
        core_numbers[v] = current_core
        ordering.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (degree[w], w))

    return ordering, core_numbers, current_core


def degeneracy(graph: Graph) -> int:
    """λ(G): the degeneracy of *graph*."""
    _, _, lam = core_decomposition(graph)
    return lam


def degeneracy_ordering(graph: Graph) -> List[int]:
    """A vertex ordering witnessing the degeneracy.

    Every vertex has at most λ(G) neighbors appearing later in the
    returned list; this is the ordering exact clique counting uses.
    """
    ordering, _, _ = core_decomposition(graph)
    return ordering


def verify_degeneracy_ordering(graph: Graph, ordering: List[int]) -> int:
    """Max forward-degree of *ordering*; equals λ for a valid ordering.

    Exposed for tests: for any permutation the returned value is an
    upper bound on λ(G), with equality for a degeneracy ordering.
    """
    position = {v: i for i, v in enumerate(ordering)}
    worst = 0
    for v in ordering:
        forward = sum(1 for w in graph.neighbors(v) if position[w] > position[v])
        worst = max(worst, forward)
    return worst
