"""Synthetic graph generators.

The paper evaluates nothing empirically, so the experiment suite needs
graph families with the properties the theory talks about:

* dense-ish Erdős–Rényi graphs (worst-case-style inputs for the FGP
  3-pass algorithm, E1/E2/E5);
* low-degeneracy families — preferential attachment, planar grids,
  bounded-degree regular graphs — which are exactly the class
  Theorem 2 targets (E6, E9);
* planted structures (cliques, cycle gadgets) so experiments control
  #H directly.

All generators take an explicit random source and are deterministic
given a seed.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import RandomSource, ensure_rng

# ---------------------------------------------------------------------------
# Classic deterministic graphs
# ---------------------------------------------------------------------------


def complete_graph(n: int) -> Graph:
    """K_n: the complete graph on n vertices."""
    return Graph(n, itertools.combinations(range(n), 2))


def cycle_graph(n: int) -> Graph:
    """C_n: the cycle on n >= 3 vertices."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 vertices, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """P_n: the path on n vertices (n - 1 edges)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(petals: int) -> Graph:
    """S_k: star with *petals* petals; vertex 0 is the center."""
    if petals < 1:
        raise GraphError(f"a star needs at least 1 petal, got {petals}")
    return Graph(petals + 1, [(0, i) for i in range(1, petals + 1)])


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols planar grid; degeneracy <= 2, so a Theorem 2 workload."""
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b}: complete bipartite graph; triangle-free, many C4s."""
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


def lollipop_graph(clique_size: int, tail: int) -> Graph:
    """A K_k with a path of *tail* vertices attached: skewed degrees.

    Exercises both branches of SampleWedge (high-degree clique
    vertices vs low-degree tail vertices) in one graph.
    """
    graph = Graph(clique_size + tail)
    for u, v in itertools.combinations(range(clique_size), 2):
        graph.add_edge(u, v)
    previous = clique_size - 1
    for i in range(clique_size, clique_size + tail):
        graph.add_edge(previous, i)
        previous = i
    return graph


# ---------------------------------------------------------------------------
# Random graph families
# ---------------------------------------------------------------------------


def gnp(n: int, p: float, rng: RandomSource = None) -> Graph:
    """Erdős–Rényi G(n, p).

    Uses the geometric skipping technique so sparse graphs cost
    O(n + m) instead of O(n^2).
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u, v in itertools.combinations(range(n), 2):
            graph.add_edge(u, v)
        return graph

    # Iterate over pairs (v, w) with w < v, skipping geometrically.
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = random_state.random()
        w += 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def gnm(n: int, m: int, rng: RandomSource = None) -> Graph:
    """Uniform random graph with exactly *m* edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} edges on {n} vertices (max {max_edges})")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    if m > max_edges // 2:
        # Dense case: sample the complement instead.
        all_edges = list(itertools.combinations(range(n), 2))
        chosen = random_state.sample(all_edges, m)
        for u, v in chosen:
            graph.add_edge(u, v)
        return graph
    while graph.m < m:
        u = random_state.randrange(n)
        v = random_state.randrange(n)
        if u != v:
            graph.add_edge_if_absent(u, v)
    return graph


def barabasi_albert(n: int, attach: int, rng: RandomSource = None) -> Graph:
    """Preferential attachment graph: degeneracy <= attach.

    Each new vertex attaches to *attach* distinct existing vertices
    chosen proportionally to their degree (repeated-endpoint trick).
    Preferential-attachment graphs are the paper's §1 example of a
    natural low-degeneracy class.
    """
    if attach < 1 or n < attach + 1:
        raise GraphError(f"need n > attach >= 1, got n={n}, attach={attach}")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    # Seed with a star on attach + 1 vertices so every vertex has degree >= 1.
    endpoint_pool: List[int] = []
    for i in range(1, attach + 1):
        graph.add_edge(0, i)
        endpoint_pool.extend((0, i))
    for v in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(random_state.choice(endpoint_pool))
        for t in targets:
            graph.add_edge(v, t)
            endpoint_pool.extend((v, t))
    return graph


def random_regular(n: int, d: int, rng: RandomSource = None) -> Graph:
    """A d-regular simple graph: circulant start + random double-edge swaps.

    Start from the deterministic d-regular circulant (i ~ i±1, ...,
    i±⌊d/2⌋, plus the antipode for odd d) and randomize with
    degree-preserving double-edge swaps; ~10·m accepted swaps mixes
    the structure thoroughly.  Always succeeds, unlike rejection
    sampling of the configuration model.
    """
    if (n * d) % 2 != 0:
        raise GraphError(f"n*d must be even for a d-regular graph, got n={n}, d={d}")
    if d >= n:
        raise GraphError(f"regular degree must satisfy d < n, got d={d}, n={n}")
    if d < 1:
        raise GraphError(f"regular degree must be >= 1, got {d}")
    random_state = ensure_rng(rng)

    graph = Graph(n)
    for offset in range(1, d // 2 + 1):
        for v in range(n):
            graph.add_edge_if_absent(v, (v + offset) % n)
    if d % 2 == 1:
        for v in range(n // 2):
            graph.add_edge_if_absent(v, v + n // 2)

    target_swaps = 10 * graph.m
    accepted = 0
    attempts = 0
    while accepted < target_swaps and attempts < 100 * target_swaps:
        attempts += 1
        a, b = graph.edge_at(random_state.randrange(graph.m))
        c, e = graph.edge_at(random_state.randrange(graph.m))
        if len({a, b, c, e}) != 4:
            continue
        # Swap {a,b},{c,e} -> {a,c},{b,e} when that stays simple.
        if graph.has_edge(a, c) or graph.has_edge(b, e):
            continue
        graph.remove_edge(a, b)
        graph.remove_edge(c, e)
        graph.add_edge(a, c)
        graph.add_edge(b, e)
        accepted += 1
    return graph


def power_law_cluster(
    n: int, attach: int, triangle_probability: float, rng: RandomSource = None
) -> Graph:
    """Holme–Kim-style power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential
    attachment step, with probability *triangle_probability* the next
    edge instead closes a triangle with a neighbor of the previous
    target.  Produces low-degeneracy graphs with many triangles — the
    motivating workload for degeneracy-parameterized triangle counting.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must be in [0, 1]")
    if attach < 1 or n < attach + 1:
        raise GraphError(f"need n > attach >= 1, got n={n}, attach={attach}")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    endpoint_pool: List[int] = []
    for i in range(1, attach + 1):
        graph.add_edge(0, i)
        endpoint_pool.extend((0, i))
    for v in range(attach + 1, n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < attach and guard < 50 * attach:
            guard += 1
            close_triangle = (
                last_target is not None
                and random_state.random() < triangle_probability
                and graph.degree(last_target) > 0
            )
            if close_triangle:
                candidate = random_state.choice(list(graph.neighbors(last_target)))
            else:
                candidate = random_state.choice(endpoint_pool)
            if candidate != v and graph.add_edge_if_absent(v, candidate):
                endpoint_pool.extend((v, candidate))
                last_target = candidate
                added += 1
    return graph


# ---------------------------------------------------------------------------
# Planted structures (experiments control #H directly)
# ---------------------------------------------------------------------------


def planted_cliques(
    n: int,
    clique_size: int,
    clique_count: int,
    noise_edges: int = 0,
    rng: RandomSource = None,
) -> Graph:
    """Disjoint planted K_r's plus random noise edges.

    The planted cliques occupy the first ``clique_size * clique_count``
    vertices; noise edges are sampled uniformly among the remaining
    non-edges.  With ``noise_edges == 0`` the number of K_r copies is
    exactly ``clique_count`` (for r == clique_size).
    """
    need = clique_size * clique_count
    if need > n:
        raise GraphError(f"{clique_count} cliques of size {clique_size} need {need} vertices")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    for c in range(clique_count):
        block = range(c * clique_size, (c + 1) * clique_size)
        for u, v in itertools.combinations(block, 2):
            graph.add_edge(u, v)
    placed = 0
    guard = 0
    while placed < noise_edges and guard < 100 * max(noise_edges, 1):
        guard += 1
        u = random_state.randrange(n)
        v = random_state.randrange(n)
        if u != v and graph.add_edge_if_absent(u, v):
            placed += 1
    return graph


def watts_strogatz(
    n: int, k: int, rewire_p: float, rng: RandomSource = None
) -> Graph:
    """Watts–Strogatz small-world graph.

    Start from a ring lattice where every vertex joins its k nearest
    neighbors (k even), then rewire each edge's far endpoint with
    probability *rewire_p*.  Low rewiring keeps degeneracy ~k/2 and a
    high clustering coefficient — a natural low-degeneracy,
    triangle-rich family for the Theorem 2 experiments.
    """
    if k < 2 or k % 2 != 0:
        raise GraphError(f"ring degree k must be even and >= 2, got {k}")
    if k >= n:
        raise GraphError(f"ring degree k={k} must be < n={n}")
    if not 0.0 <= rewire_p <= 1.0:
        raise GraphError(f"rewire probability must be in [0, 1], got {rewire_p}")
    random_state = ensure_rng(rng)
    graph = Graph(n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge_if_absent(v, (v + offset) % n)
    if rewire_p == 0.0:
        return graph
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            w = (v + offset) % n
            if random_state.random() < rewire_p and graph.has_edge(v, w):
                candidates = [
                    u for u in range(n) if u != v and not graph.has_edge(v, u)
                ]
                if candidates:
                    graph.remove_edge(v, w)
                    graph.add_edge(v, random_state.choice(candidates))
    return graph


def random_geometric(
    n: int, radius: float, rng: RandomSource = None
) -> Graph:
    """Random geometric graph on the unit square.

    Vertices are uniform points; edges join pairs within *radius*.
    Geometric graphs are triangle-dense with degeneracy governed by
    local point density — another natural family for E9's λ-vs-√m
    landscape.
    """
    if radius <= 0.0:
        raise GraphError(f"radius must be positive, got {radius}")
    random_state = ensure_rng(rng)
    points = [(random_state.random(), random_state.random()) for _ in range(n)]
    graph = Graph(n)
    # Grid-bucket neighbor search: O(n + m) for constant density.
    cell = max(radius, 1e-9)
    buckets = {}
    for index, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(index)
    limit = radius * radius
    for (cx, cy), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbors = buckets.get((cx + dx, cy + dy), [])
                for u in members:
                    ux, uy = points[u]
                    for v in neighbors:
                        if v <= u:
                            continue
                        vx, vy = points[v]
                        if (ux - vx) ** 2 + (uy - vy) ** 2 <= limit:
                            graph.add_edge_if_absent(u, v)
    return graph


def planted_partition(
    communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    rng: RandomSource = None,
) -> Graph:
    """Planted-partition (two-parameter SBM) graph.

    *communities* blocks of *community_size* vertices; within-block
    pairs connect with probability *p_in*, cross-block pairs with
    *p_out*.  Dense blocks carry the cliques; sparse cross edges keep
    the global graph large — a clique-counting stress workload.
    """
    if communities < 1 or community_size < 1:
        raise GraphError("need >= 1 community of >= 1 vertex")
    for name, prob in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= prob <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {prob}")
    random_state = ensure_rng(rng)
    n = communities * community_size
    graph = Graph(n)
    block = [v // community_size for v in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            probability = p_in if block[u] == block[v] else p_out
            if probability and random_state.random() < probability:
                graph.add_edge(u, v)
    return graph


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union of *graphs*, relabelled consecutively."""
    total = sum(g.n for g in graphs)
    result = Graph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            result.add_edge(u + offset, v + offset)
        offset += g.n
    return result


def erdos_renyi_with_planted_copies(
    pattern_graph: Graph,
    copies: int,
    noise_n: int,
    noise_p: float,
    rng: RandomSource = None,
) -> Graph:
    """Plant disjoint copies of a pattern next to a G(n, p) noise blob.

    Useful for making #H >= copies while keeping the stream large; the
    exact counters then measure the true total including noise-induced
    copies.
    """
    random_state = ensure_rng(rng)
    parts = [pattern_graph.copy() for _ in range(copies)]
    parts.append(gnp(noise_n, noise_p, random_state))
    return disjoint_union(parts)


# ---------------------------------------------------------------------------
# Streaming generator families (worlds sweeps)
# ---------------------------------------------------------------------------
#
# The two families below are the generator-zoo members the in-memory
# section is missing (stochastic Kronecker / R-MAT and the erased
# configuration model).  Unlike the ``Graph``-returning generators they
# yield ``(u, v)`` int64 column chunks, so a sweep can write them
# straight to a ``.reb`` file through ``BinaryUpdateWriter`` without
# ever materializing the edge list — and, crucially for
# ``DiskEdgeStream``, calling the generator twice with the same
# arguments replays the identical chunk sequence bit for bit.  They
# therefore take an integer ``seed`` (rebuilt into a fresh numpy
# ``Generator`` per call) instead of a shared ``RandomSource``.

#: Default R-MAT initiator matrix (a, b, c, d) — the classic skewed
#: quadrant weights from the Kronecker-graphs literature.
RMAT_INITIATOR: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)

#: Largest supported Kronecker power: keeps n = 2^power small enough
#: that the uint64 dedup key ``u * n + v`` cannot overflow.
MAX_KRONECKER_POWER = 30

EdgeChunk = Tuple[np.ndarray, np.ndarray]


def _check_seed(seed: int) -> int:
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise GraphError(
            f"streaming generators need an integer seed for replay, got {seed!r}"
        )
    return seed


def _check_chunk_size(chunk_size: int) -> int:
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int) or chunk_size < 1:
        raise GraphError(f"chunk_size must be a positive integer, got {chunk_size!r}")
    return chunk_size


def stochastic_kronecker_chunks(
    power: int,
    edges: int,
    initiator: Sequence[float] = RMAT_INITIATOR,
    seed: int = 0,
    chunk_size: int = 8192,
    max_attempt_factor: int = 64,
) -> Iterator[EdgeChunk]:
    """Stream a stochastic Kronecker (R-MAT) graph as edge chunks.

    Samples *edges* distinct undirected edges on ``n = 2**power``
    vertices by the recursive-quadrant descent: each edge picks one of
    the four quadrants per bit level with probabilities proportional to
    *initiator* ``(a, b, c, d)``.  Self-loops and duplicates are
    rejected, so heavy-tailed initiators on tiny powers may saturate
    before reaching *edges*; sampling stops after
    ``max_attempt_factor * edges`` attempts and yields what was found.

    Deterministic: two calls with identical arguments yield identical
    chunk sequences (the requirement for multi-pass ``DiskEdgeStream``
    materialization).
    """
    if isinstance(power, bool) or not isinstance(power, int) or power < 1:
        raise GraphError(f"kronecker power must be a positive integer, got {power!r}")
    if power > MAX_KRONECKER_POWER:
        raise GraphError(
            f"kronecker power must be <= {MAX_KRONECKER_POWER}, got {power}"
        )
    if isinstance(edges, bool) or not isinstance(edges, int) or edges < 1:
        raise GraphError(f"edge target must be a positive integer, got {edges!r}")
    probs = np.asarray(initiator, dtype=np.float64).ravel()
    if probs.shape != (4,) or not np.isfinite(probs).all() or (probs <= 0.0).any():
        raise GraphError(
            f"initiator must be 4 positive finite weights, got {initiator!r}"
        )
    _check_seed(seed)
    _check_chunk_size(chunk_size)
    n = 1 << power
    max_edges = n * (n - 1) // 2
    if edges > max_edges:
        raise GraphError(f"cannot place {edges} edges on {n} vertices (max {max_edges})")

    probs = probs / probs.sum()
    cum = np.cumsum(probs)
    cum[-1] = 1.0
    # Bit weight of each descent level, most significant first.
    weights = np.left_shift(
        np.int64(1), np.arange(power - 1, -1, -1, dtype=np.int64)
    )
    generator = np.random.default_rng(seed)
    seen: set = set()
    pending_u: List[int] = []
    pending_v: List[int] = []
    collected = 0
    attempts = 0
    attempt_cap = max_attempt_factor * edges + 1024
    while collected < edges and attempts < attempt_cap:
        block = min(max(1024, 2 * (edges - collected)), 1 << 16)
        attempts += block
        # Quadrant index (0..3) per edge per level; bit 1 selects the
        # row half (u), bit 0 the column half (v).
        quadrants = np.searchsorted(cum, generator.random((block, power)))
        u = ((quadrants >> 1).astype(np.int64) * weights).sum(axis=1)
        v = ((quadrants & 1).astype(np.int64) * weights).sum(axis=1)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        proper = lo != hi
        lo = lo[proper]
        hi = hi[proper]
        keys = lo * np.int64(n) + hi
        # First occurrence of each key within the block, in arrival order.
        _, first = np.unique(keys, return_index=True)
        first.sort()
        for index in first.tolist():
            key = int(keys[index])
            if key in seen:
                continue
            seen.add(key)
            pending_u.append(int(lo[index]))
            pending_v.append(int(hi[index]))
            collected += 1
            if len(pending_u) >= chunk_size:
                yield (
                    np.array(pending_u, dtype=np.int64),
                    np.array(pending_v, dtype=np.int64),
                )
                pending_u, pending_v = [], []
            if collected >= edges:
                break
    if pending_u:
        yield np.array(pending_u, dtype=np.int64), np.array(pending_v, dtype=np.int64)


def stochastic_kronecker(
    power: int,
    edges: int,
    initiator: Sequence[float] = RMAT_INITIATOR,
    seed: int = 0,
) -> Graph:
    """In-memory :func:`stochastic_kronecker_chunks` (small instances)."""
    graph = Graph(1 << power)
    for u, v in stochastic_kronecker_chunks(power, edges, initiator, seed):
        for a, b in zip(u.tolist(), v.tolist()):
            graph.add_edge(a, b)
    return graph


def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: int = 0,
) -> np.ndarray:
    """Sample a graphical power-law degree sequence for the config model.

    Degrees follow a discretized Pareto law with tail exponent
    *exponent* (must be > 1), truncated to ``[min_degree, max_degree]``
    (*max_degree* defaults to ``n - 1``).  The sum is forced even by
    bumping the first degree if needed, so the result is always a valid
    stub count for :func:`configuration_model_chunks`.
    """
    if isinstance(n, bool) or not isinstance(n, int) or n < 2:
        raise GraphError(f"degree sequence needs n >= 2, got {n!r}")
    if not isinstance(exponent, (int, float)) or isinstance(exponent, bool):
        raise GraphError(f"degree exponent must be a number, got {exponent!r}")
    if not math.isfinite(exponent) or exponent <= 1.0:
        raise GraphError(f"degree exponent must be > 1, got {exponent}")
    if isinstance(min_degree, bool) or not isinstance(min_degree, int) or min_degree < 1:
        raise GraphError(f"min_degree must be a positive integer, got {min_degree!r}")
    if max_degree is None:
        max_degree = n - 1
    if (
        isinstance(max_degree, bool)
        or not isinstance(max_degree, int)
        or max_degree < min_degree
        or max_degree > n - 1
    ):
        raise GraphError(
            f"need min_degree <= max_degree <= n - 1, got "
            f"min_degree={min_degree}, max_degree={max_degree}, n={n}"
        )
    _check_seed(seed)
    generator = np.random.default_rng(seed)
    # Inverse-CDF sample of a continuous Pareto with shape exponent - 1,
    # floored to integers: P(D >= d) ~ (d / min_degree)^(1 - exponent).
    uniform = generator.random(n)
    degrees = np.floor(
        min_degree * np.power(1.0 - uniform, -1.0 / (exponent - 1.0))
    ).astype(np.int64)
    degrees = np.clip(degrees, min_degree, max_degree)
    if int(degrees.sum()) % 2 == 1:
        # Force an even stub count without leaving the valid range.
        degrees[0] += 1 if degrees[0] < max_degree else -1
    return degrees


def configuration_model_chunks(
    degrees: Sequence[int],
    seed: int = 0,
    chunk_size: int = 8192,
) -> Iterator[EdgeChunk]:
    """Stream an erased configuration model as edge chunks.

    Builds the classic stub-matching multigraph for *degrees* (sum must
    be even), then erases self-loops and duplicate edges, yielding the
    surviving simple edges in matching order as ``(u, v)`` int64
    chunks.  Deterministic: identical arguments replay identical chunk
    sequences, so multi-pass ``DiskEdgeStream`` sweeps can re-derive
    the stream from the spec alone.
    """
    degree_array = np.ascontiguousarray(degrees, dtype=np.int64)
    if degree_array.ndim != 1 or degree_array.shape[0] < 2:
        raise GraphError("configuration model needs a 1-D sequence of >= 2 degrees")
    n = int(degree_array.shape[0])
    if n > 1 << 32:
        raise GraphError(f"configuration model supports n <= 2^32, got n={n}")
    if (degree_array < 0).any():
        raise GraphError("degrees must be non-negative")
    if (degree_array > n - 1).any():
        raise GraphError(f"degrees must be <= n - 1 = {n - 1} for a simple graph")
    total_stubs = int(degree_array.sum())
    if total_stubs % 2 != 0:
        raise GraphError(f"degree sum must be even, got {total_stubs}")
    _check_seed(seed)
    _check_chunk_size(chunk_size)
    if total_stubs == 0:
        return

    generator = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degree_array)
    stubs = stubs[generator.permutation(total_stubs)]
    u = stubs[0::2]
    v = stubs[1::2]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    proper = lo != hi
    lo = lo[proper]
    hi = hi[proper]
    keys = lo.astype(np.uint64) * np.uint64(n) + hi.astype(np.uint64)
    # Keep the first occurrence of each edge, preserving matching order.
    _, first = np.unique(keys, return_index=True)
    first.sort()
    lo = lo[first]
    hi = hi[first]
    for start in range(0, lo.shape[0], chunk_size):
        stop = start + chunk_size
        yield lo[start:stop].copy(), hi[start:stop].copy()


def configuration_model(degrees: Sequence[int], seed: int = 0) -> Graph:
    """In-memory :func:`configuration_model_chunks` (small instances)."""
    degree_array = np.ascontiguousarray(degrees, dtype=np.int64)
    graph = Graph(int(degree_array.shape[0]))
    for u, v in configuration_model_chunks(degree_array, seed):
        for a, b in zip(u.tolist(), v.tolist()):
            graph.add_edge(a, b)
    return graph


def karate_club() -> Graph:
    """Zachary's karate club (34 vertices, 78 edges), hard-coded.

    The only "real" graph in the suite; small enough to verify by
    exact counting, and a standard sanity check for triangle counts
    (#T = 45).
    """
    edges: List[Tuple[int, int]] = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
        (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
        (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19),
        (1, 21), (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13),
        (2, 27), (2, 28), (2, 32), (3, 7), (3, 12), (3, 13), (4, 6),
        (4, 10), (5, 6), (5, 10), (5, 16), (6, 16), (8, 30), (8, 32),
        (8, 33), (9, 33), (13, 33), (14, 32), (14, 33), (15, 32),
        (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
        (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32),
        (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
        (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33),
        (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
    ]
    return Graph(34, edges)
