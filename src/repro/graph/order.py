"""The degree-based total vertex order ≺_G of Definition 12.

``u ≺_G v`` iff ``dg(u) < dg(v)``, or ``dg(u) == dg(v)`` and
``id(u) < id(v)``.  Canonical cycles and stars (Definitions 13–14) are
defined relative to this order, and the FGP sampler's correctness
depends on it being a *total* order — ties are broken by vertex id.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.graph.graph import Graph


def precedes(graph: Graph, u: int, v: int) -> bool:
    """Whether ``u ≺_G v`` under Definition 12."""
    du, dv = graph.degree(u), graph.degree(v)
    if du != dv:
        return du < dv
    return u < v


class VertexOrder:
    """A materialized ≺ order usable without the full graph.

    The streaming algorithms only ever learn the degrees of the O(1)
    vertices they sampled; this class reproduces ≺_G from such a
    partial degree map so the stream-side postprocessing can perform
    exactly the same canonicality checks as the query-model algorithm.

    Parameters
    ----------
    degrees:
        Mapping from vertex id to its degree in G.  Comparisons are
        only valid for vertices present in the mapping.
    """

    __slots__ = ("_degrees",)

    def __init__(self, degrees: Mapping[int, int]) -> None:
        self._degrees = dict(degrees)

    @classmethod
    def from_graph(cls, graph: Graph) -> "VertexOrder":
        """Materialize the full ≺_G order of *graph*."""
        return cls({v: graph.degree(v) for v in graph.vertices()})

    def degree(self, v: int) -> int:
        """Recorded degree of *v*; raises ``KeyError`` if unknown."""
        return self._degrees[v]

    def knows(self, v: int) -> bool:
        """Whether *v*'s degree has been recorded."""
        return v in self._degrees

    def key(self, v: int) -> Tuple[int, int]:
        """Sort key realizing ≺: ``(degree, id)``."""
        return (self._degrees[v], v)

    def precedes(self, u: int, v: int) -> bool:
        """Whether ``u ≺ v``."""
        return self.key(u) < self.key(v)

    def sorted(self, vertices: Sequence[int]) -> List[int]:
        """Vertices sorted increasingly by ≺."""
        return sorted(vertices, key=self.key)

    def minimum(self, vertices: Sequence[int]) -> int:
        """The ≺-minimum of a non-empty vertex collection."""
        if not vertices:
            raise ValueError("minimum of empty vertex collection")
        return min(vertices, key=self.key)

    def is_increasing(self, vertices: Sequence[int]) -> bool:
        """Whether the sequence is strictly ≺-increasing."""
        return all(
            self.precedes(a, b) for a, b in zip(vertices, vertices[1:])
        )
