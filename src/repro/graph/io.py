"""Edge-list I/O.

Plain-text edge lists (one ``u v`` pair per line, ``#`` comments) are
the interchange format for external graph data; examples use these to
persist generated workloads.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import GraphError
from repro.graph.graph import Graph

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write *graph* as a text edge list.

    With *header*, the first line is a comment ``# n m`` recording the
    vertex count, so isolated trailing vertices survive a round trip.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# {graph.n} {graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path: PathLike, n: Optional[int] = None) -> Graph:
    """Read a text edge list written by :func:`write_edge_list`.

    Vertex count resolution order: explicit *n* argument, ``# n m``
    header, else inferred as ``max vertex id + 1``.
    """
    edges = []
    header_n: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if header_n is None:
                    fields = line[1:].split()
                    if len(fields) >= 1 and fields[0].isdigit():
                        header_n = int(fields[0])
                continue
            fields = line.split()
            if len(fields) < 2:
                raise GraphError(f"{path}:{line_number}: expected 'u v', got {line!r}")
            try:
                u, v = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: non-integer endpoint in {line!r}") from exc
            edges.append((u, v))
    if n is None:
        n = header_n
    return Graph.from_edges(edges, n=n)
