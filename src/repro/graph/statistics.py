"""Descriptive graph statistics used by experiments and examples.

Small, exact computations over a materialized graph: degree summaries,
wedge counts, the AGM bound on #H, and a one-line profile used in
experiment table headers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.graph.degeneracy import degeneracy
from repro.graph.graph import Graph


def wedge_count(graph: Graph) -> int:
    """Number of paths on 3 vertices (#P3) = Σ_v C(d_v, 2)."""
    return sum(d * (d - 1) // 2 for d in graph.degrees())


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for d in graph.degrees():
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def degree_moment(graph: Graph, power: int) -> float:
    """Σ_v d_v^power (power = 2 appears in the C4 walk identity)."""
    return float(sum(d**power for d in graph.degrees()))


def agm_bound(graph: Graph, rho: float) -> float:
    """The AGM bound: #H <= m^ρ(H) [AGM08], quoted in §1.

    The natural starting point for geometric search over the unknown
    lower bound L.
    """
    return float(graph.m) ** rho


def heavy_vertices(graph: Graph) -> List[int]:
    """Vertices with degree > √(2m) — the SampleWedge high branch set."""
    if graph.m == 0:
        return []
    threshold = math.sqrt(2.0 * graph.m)
    return [v for v in graph.vertices() if graph.degree(v) > threshold]


@dataclass(frozen=True)
class GraphProfile:
    """One-line summary of a workload graph."""

    n: int
    m: int
    max_degree: int
    mean_degree: float
    degeneracy: int
    wedges: int
    heavy_count: int

    def describe(self) -> str:
        return (
            f"n={self.n} m={self.m} dmax={self.max_degree} "
            f"davg={self.mean_degree:.2f} lambda={self.degeneracy} "
            f"wedges={self.wedges} heavy(>sqrt(2m))={self.heavy_count}"
        )


def profile(graph: Graph) -> GraphProfile:
    """Compute a :class:`GraphProfile` for *graph*."""
    n = graph.n
    mean_degree = 2.0 * graph.m / n if n else 0.0
    return GraphProfile(
        n=n,
        m=graph.m,
        max_degree=graph.max_degree(),
        mean_degree=mean_degree,
        degeneracy=degeneracy(graph),
        wedges=wedge_count(graph),
        heavy_count=len(heavy_vertices(graph)),
    )
