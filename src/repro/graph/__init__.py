"""Graph substrate: data structure, orders, degeneracy, generators, I/O."""

from repro.graph.graph import Graph
from repro.graph.order import VertexOrder, precedes
from repro.graph.degeneracy import core_decomposition, degeneracy, degeneracy_ordering
from repro.graph import generators
from repro.graph.io import read_edge_list, write_edge_list

__all__ = [
    "Graph",
    "VertexOrder",
    "precedes",
    "core_decomposition",
    "degeneracy",
    "degeneracy_ordering",
    "generators",
    "read_edge_list",
    "write_edge_list",
]
