"""Undirected simple graph on vertex set ``[n] = {0, ..., n-1}``.

This is the substrate every algorithm in the library runs on.  The
representation is an adjacency *list* per vertex (for indexed neighbor
queries, query type ``f3`` of Definition 6) backed by an adjacency
*set* (for O(1) adjacency queries, query type ``f4``), plus a flat
edge list (for uniform edge sampling, query type ``f1``).

Vertices are dense integers.  Self-loops and parallel edges are
rejected: the paper's model is simple undirected graphs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise GraphError(f"self-loop ({u}, {v}) is not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


class Graph:
    """An undirected simple graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  The vertex set is fixed at construction;
        edges may be added and removed freely.
    edges:
        Optional iterable of ``(u, v)`` pairs to insert.

    Notes
    -----
    Neighbor lists preserve *insertion order*, which lets the oracle
    layer expose the "i-th neighbor" query both in adjacency-list
    order (query model) and in stream arrival order (after building
    the graph in stream order), making the Theorem 9 emulation
    bit-for-bit comparable to the direct query model.
    """

    __slots__ = ("_n", "_adj_list", "_adj_set", "_edges", "_edge_index")

    def __init__(self, n: int, edges: Optional[Iterable[Edge]] = None) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adj_list: List[List[int]] = [[] for _ in range(n)]
        self._adj_set: List[Set[int]] = [set() for _ in range(n)]
        self._edges: List[Edge] = []
        self._edge_index: Dict[Edge, int] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], n: Optional[int] = None) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` if omitted."""
        edge_list = [normalize_edge(u, v) for u, v in edges]
        if n is None:
            n = 1 + max((max(e) for e in edge_list), default=-1)
        return cls(n, edge_list)

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        return Graph(self._n, self._edges)

    # -- basic accessors ----------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def vertices(self) -> range:
        """The vertex set as a range object."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order, each as ``(min, max)``."""
        return iter(self._edges)

    def edge_at(self, index: int) -> Edge:
        """The edge stored at *index* (used for uniform edge sampling)."""
        return self._edges[index]

    def degree(self, v: int) -> int:
        """Degree of vertex *v*."""
        self._check_vertex(v)
        return len(self._adj_list[v])

    def degrees(self) -> List[int]:
        """Degree sequence indexed by vertex."""
        return [len(neighbors) for neighbors in self._adj_list]

    def max_degree(self) -> int:
        """Maximum degree Δ(G); 0 for an edgeless graph."""
        if self._n == 0:
            return 0
        return max(len(neighbors) for neighbors in self._adj_list)

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbors of *v* in insertion order (do not mutate)."""
        self._check_vertex(v)
        return self._adj_list[v]

    def neighbor_at(self, v: int, index: int) -> int:
        """The *index*-th neighbor of *v* (0-based), in insertion order.

        This realizes query type ``f3`` of Definition 6.
        """
        self._check_vertex(v)
        neighbors = self._adj_list[v]
        if not 0 <= index < len(neighbors):
            raise GraphError(
                f"neighbor index {index} out of range for vertex {v} with degree {len(neighbors)}"
            )
        return neighbors[index]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present (query ``f4``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        return v in self._adj_set[u]

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and set(self._edges) == set(other._edges)

    def __hash__(self) -> int:  # pragma: no cover - graphs used as keys rarely
        return hash((self._n, frozenset(self._edges)))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.m})"

    # -- mutation ------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; raises :class:`GraphError` if present."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge = normalize_edge(u, v)
        if edge in self._edge_index:
            raise GraphError(f"edge {edge} already present")
        self._edge_index[edge] = len(self._edges)
        self._edges.append(edge)
        self._adj_list[u].append(v)
        self._adj_list[v].append(u)
        self._adj_set[u].add(v)
        self._adj_set[v].add(u)

    def add_edge_if_absent(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}`` unless present; return whether inserted."""
        if u == v or self.has_edge(u, v):
            return False
        self.add_edge(u, v)
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raises :class:`GraphError` if absent.

        Removal is O(degree) because adjacency lists are order-
        preserving; turnstile experiments delete a minority of edges so
        this does not dominate.
        """
        edge = normalize_edge(u, v)
        index = self._edge_index.pop(edge, None)
        if index is None:
            raise GraphError(f"edge {edge} not present")
        # Swap-remove from the flat edge list, fixing the moved edge's index.
        last = self._edges.pop()
        if index < len(self._edges):
            self._edges[index] = last
            self._edge_index[last] = index
        self._adj_list[u].remove(v)
        self._adj_list[v].remove(u)
        self._adj_set[u].discard(v)
        self._adj_set[v].discard(u)

    # -- derived views -------------------------------------------------

    def subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on *vertices*.

        Returns the subgraph (relabelled to ``0..k-1`` in the iteration
        order of *vertices*) and the mapping from original labels to
        new labels.
        """
        ordered = list(dict.fromkeys(vertices))
        mapping = {v: i for i, v in enumerate(ordered)}
        sub = Graph(len(ordered))
        for u, v in itertools.combinations(ordered, 2):
            if self.has_edge(u, v):
                sub.add_edge(mapping[u], mapping[v])
        return sub, mapping

    def connected_components(self) -> List[List[int]]:
        """Connected components, each a sorted vertex list."""
        seen = [False] * self._n
        components: List[List[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for w in self._adj_list[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (vacuously true for n <= 1)."""
        if self._n <= 1:
            return True
        return len(self.connected_components()) == 1

    def complement_edges(self) -> Iterator[Edge]:
        """Iterate over the non-edges of the graph."""
        for u, v in itertools.combinations(range(self._n), 2):
            if not self.has_edge(u, v):
                yield (u, v)

    # -- internals -----------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")
