"""repro — Approximately Counting Subgraphs in Data Streams.

A from-scratch reproduction of Fichtenberger & Peng (PODS 2022,
arXiv:2203.14225): streaming algorithms for (1±ε)-approximate subgraph
counting, built around a generic transformation from round-adaptive
sublinear-time query algorithms to multi-pass streaming algorithms.

Public API tour
---------------
Graphs and streams::

    from repro import Graph, generators, insertion_stream
    graph = generators.barabasi_albert(1000, 5, rng=1)
    stream = insertion_stream(graph, rng=2)

Patterns (the target subgraph H and its invariants)::

    from repro import patterns
    triangle = patterns.triangle()
    triangle.rho()            # fractional edge cover, Definition 3
    triangle.decomposition()  # Lemma 4 odd-cycle/star decomposition

The headline algorithms::

    from repro import (
        count_subgraphs_insertion_only,   # Theorem 17: 3 passes
        count_subgraphs_turnstile,        # Theorem 1: 3 passes, deletions
        count_cliques_stream,             # Theorem 2: 5r passes, degeneracy
    )

The engine (fused multi-estimator execution)::

    from repro import StreamEngine, count_subgraphs_insertion_only_fused
    from repro.engine import fgp_insertion_estimator, TriestEstimator

    # Median-of-32 amplification in 3 stream passes instead of 96:
    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=200, rng=7)
    fused.estimate                     # median of 32 independent copies

    # Heterogeneous fusion: one stream iteration feeds them all.
    engine = StreamEngine(stream, batch_size=2048)
    engine.register(fgp_insertion_estimator(stream, patterns.triangle(),
                                            trials=500, rng=1, name="fgp"))
    engine.register(TriestEstimator(capacity=400, rng=2))
    report = engine.run()              # 3 passes total, not 3 + 1

Every estimator also runs standalone through the one-shot functions
above; fused mirror mode (``mode="mirror"``) is bit-identical to them
for the same seeds, while the default shared mode merges all copies'
query batches into one oracle for the highest throughput (see
``repro.engine`` and ``benchmarks/bench_throughput.py``).

Parallel execution: pass ``backend="process"`` (plus ``workers=N``) to
any fused entry point — or build a ``StreamEngine`` with that backend
and register picklable specs — to shard the copies across a
multiprocessing pool; see :mod:`repro.engine.parallel` and
``docs/ARCHITECTURE.md``.  Mirror-mode results are identical across
backends and worker counts for the same seeds.

Exact ground truth::

    from repro import count_subgraphs_exact
"""

from repro.errors import (
    CheckpointError,
    EstimationError,
    GraphError,
    OracleError,
    PatternError,
    ReproError,
    SketchError,
    StreamError,
)
from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.degeneracy import core_decomposition, degeneracy, degeneracy_ordering
from repro.patterns import pattern as patterns
from repro.patterns.pattern import Pattern
from repro.exact.subgraphs import count_subgraphs as count_subgraphs_exact
from repro.exact.triangles import count_triangles
from repro.exact.cliques import count_cliques
from repro.streams.stream import EdgeStream, Update, insertion_stream, turnstile_stream
from repro.streams.generators import (
    adversarial_order_stream,
    split_substreams,
    stream_from_graph,
    turnstile_churn_stream,
)
from repro.streaming.three_pass import (
    count_subgraphs_insertion_only,
    sample_copies_stream,
)
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streaming.two_pass import count_subgraphs_two_pass, is_star_decomposable
from repro.streaming.adaptive import count_subgraphs_unknown
from repro.streams.models import (
    AdjacencyListStream,
    adjacency_list_stream,
    random_order_stream,
)
from repro.transform.profile import profile_rounds
from repro.streaming.uniform import (
    UniformSampleResult,
    sample_subgraph_uniformly_stream,
)
from repro.streaming.ers.counter import count_cliques_query_model, count_cliques_stream
from repro.streaming.ers.params import ErsParameters
from repro.estimate.result import EstimateResult
from repro.estimate.search import geometric_search
from repro.engine.core import EngineBackend, EngineReport, StreamEngine
from repro.engine.live import LiveEngine
from repro.engine.fused import (
    FusedCountResult,
    FusionMode,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
)

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "GraphError",
    "PatternError",
    "StreamError",
    "OracleError",
    "SketchError",
    "EstimationError",
    "CheckpointError",
    "Graph",
    "generators",
    "degeneracy",
    "degeneracy_ordering",
    "core_decomposition",
    "patterns",
    "Pattern",
    "count_subgraphs_exact",
    "count_triangles",
    "count_cliques",
    "EdgeStream",
    "Update",
    "insertion_stream",
    "turnstile_stream",
    "stream_from_graph",
    "adversarial_order_stream",
    "turnstile_churn_stream",
    "split_substreams",
    "count_subgraphs_insertion_only",
    "count_subgraphs_turnstile",
    "count_subgraphs_two_pass",
    "count_subgraphs_unknown",
    "is_star_decomposable",
    "AdjacencyListStream",
    "adjacency_list_stream",
    "random_order_stream",
    "profile_rounds",
    "sample_copies_stream",
    "sample_subgraph_uniformly_stream",
    "UniformSampleResult",
    "count_cliques_stream",
    "count_cliques_query_model",
    "ErsParameters",
    "EstimateResult",
    "geometric_search",
    "StreamEngine",
    "LiveEngine",
    "EngineReport",
    "EngineBackend",
    "FusionMode",
    "FusedCountResult",
    "count_subgraphs_insertion_only_fused",
    "count_subgraphs_turnstile_fused",
    "count_subgraphs_two_pass_fused",
    "__version__",
]
