"""repro — Approximately Counting Subgraphs in Data Streams.

A from-scratch reproduction of Fichtenberger & Peng (PODS 2022,
arXiv:2203.14225): streaming algorithms for (1±ε)-approximate subgraph
counting, built around a generic transformation from round-adaptive
sublinear-time query algorithms to multi-pass streaming algorithms.

Public API tour
---------------
Graphs and streams::

    from repro import Graph, generators, insertion_stream
    graph = generators.barabasi_albert(1000, 5, rng=1)
    stream = insertion_stream(graph, rng=2)

Patterns (the target subgraph H and its invariants)::

    from repro import patterns
    triangle = patterns.triangle()
    triangle.rho()            # fractional edge cover, Definition 3
    triangle.decomposition()  # Lemma 4 odd-cycle/star decomposition

The headline algorithms::

    from repro import (
        count_subgraphs_insertion_only,   # Theorem 17: 3 passes
        count_subgraphs_turnstile,        # Theorem 1: 3 passes, deletions
        count_cliques_stream,             # Theorem 2: 5r passes, degeneracy
    )

Exact ground truth::

    from repro import count_subgraphs_exact
"""

from repro.errors import (
    EstimationError,
    GraphError,
    OracleError,
    PatternError,
    ReproError,
    SketchError,
    StreamError,
)
from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.degeneracy import core_decomposition, degeneracy, degeneracy_ordering
from repro.patterns import pattern as patterns
from repro.patterns.pattern import Pattern
from repro.exact.subgraphs import count_subgraphs as count_subgraphs_exact
from repro.exact.triangles import count_triangles
from repro.exact.cliques import count_cliques
from repro.streams.stream import EdgeStream, Update, insertion_stream, turnstile_stream
from repro.streams.generators import (
    adversarial_order_stream,
    split_substreams,
    stream_from_graph,
    turnstile_churn_stream,
)
from repro.streaming.three_pass import (
    count_subgraphs_insertion_only,
    sample_copies_stream,
)
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streaming.two_pass import count_subgraphs_two_pass, is_star_decomposable
from repro.streaming.adaptive import count_subgraphs_unknown
from repro.streams.models import (
    AdjacencyListStream,
    adjacency_list_stream,
    random_order_stream,
)
from repro.transform.profile import profile_rounds
from repro.streaming.uniform import (
    UniformSampleResult,
    sample_subgraph_uniformly_stream,
)
from repro.streaming.ers.counter import count_cliques_query_model, count_cliques_stream
from repro.streaming.ers.params import ErsParameters
from repro.estimate.result import EstimateResult
from repro.estimate.search import geometric_search

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "GraphError",
    "PatternError",
    "StreamError",
    "OracleError",
    "SketchError",
    "EstimationError",
    "Graph",
    "generators",
    "degeneracy",
    "degeneracy_ordering",
    "core_decomposition",
    "patterns",
    "Pattern",
    "count_subgraphs_exact",
    "count_triangles",
    "count_cliques",
    "EdgeStream",
    "Update",
    "insertion_stream",
    "turnstile_stream",
    "stream_from_graph",
    "adversarial_order_stream",
    "turnstile_churn_stream",
    "split_substreams",
    "count_subgraphs_insertion_only",
    "count_subgraphs_turnstile",
    "count_subgraphs_two_pass",
    "count_subgraphs_unknown",
    "is_star_decomposable",
    "AdjacencyListStream",
    "adjacency_list_stream",
    "random_order_stream",
    "profile_rounds",
    "sample_copies_stream",
    "sample_subgraph_uniformly_stream",
    "UniformSampleResult",
    "count_cliques_stream",
    "count_cliques_query_model",
    "ErsParameters",
    "EstimateResult",
    "geometric_search",
    "__version__",
]
