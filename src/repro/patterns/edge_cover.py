"""Edge-cover numbers of a pattern (Definition 3 and footnote 1).

* ρ(H): fractional edge-cover number — an LP minimum, solved exactly
  with scipy's HiGHS solver.  Optimal basic solutions are
  half-integral, which the decomposition module relies on.
* β(H): integral edge-cover number — computed exactly by subset DP
  (patterns are constant-size).
* τ(H): fractional vertex-cover number — the parameter in the KKP18
  one-pass lower bound quoted in §1; included for the experiment
  tables.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import PatternError
from repro.graph.graph import Edge, Graph


def _require_min_degree_one(graph: Graph) -> None:
    for v in graph.vertices():
        if graph.degree(v) == 0:
            raise PatternError(f"vertex {v} is isolated; no edge cover exists")


def fractional_edge_cover(graph: Graph) -> Dict[Edge, float]:
    """An optimal fractional edge cover ψ of *graph*.

    Solves  min Σ ψ(e)  s.t.  Σ_{e ∋ v} ψ(e) >= 1 for all v, ψ >= 0.
    The upper bound ψ <= 1 in Definition 3 is never active at an
    optimum, so it is omitted.  Returns a basic optimal solution
    (half-integral for this LP).
    """
    _require_min_degree_one(graph)
    edges = list(graph.edges())
    n, m = graph.n, len(edges)
    # linprog solves min c @ x s.t. A_ub @ x <= b_ub; flip the cover
    # constraints  A x >= 1  to  -A x <= -1.
    matrix = np.zeros((n, m))
    for j, (u, v) in enumerate(edges):
        matrix[u, j] = 1.0
        matrix[v, j] = 1.0
    result = linprog(
        c=np.ones(m),
        A_ub=-matrix,
        b_ub=-np.ones(n),
        bounds=[(0.0, None)] * m,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise PatternError(f"edge-cover LP failed: {result.message}")
    return {edge: float(weight) for edge, weight in zip(edges, result.x)}


def fractional_edge_cover_number(graph: Graph) -> float:
    """ρ(H): the value of the fractional edge-cover LP.

    The value is always half-integral; we round to the nearest half to
    remove solver noise.
    """
    cover = fractional_edge_cover(graph)
    value = sum(cover.values())
    return round(value * 2.0) / 2.0


def fractional_vertex_cover_number(graph: Graph) -> float:
    """τ(H): the fractional vertex-cover LP value (lower-bound parameter).

    min Σ y(v)  s.t.  y(u) + y(v) >= 1 for every edge, y >= 0.
    """
    _require_min_degree_one(graph)
    edges = list(graph.edges())
    n, m = graph.n, len(edges)
    matrix = np.zeros((m, n))
    for i, (u, v) in enumerate(edges):
        matrix[i, u] = 1.0
        matrix[i, v] = 1.0
    result = linprog(
        c=np.ones(n),
        A_ub=-matrix,
        b_ub=-np.ones(m),
        bounds=[(0.0, None)] * n,
        method="highs",
    )
    if not result.success:  # pragma: no cover
        raise PatternError(f"vertex-cover LP failed: {result.message}")
    return round(float(result.fun) * 2.0) / 2.0


def integral_edge_cover_number(graph: Graph) -> int:
    """β(H): minimum number of edges covering all vertices.

    Subset DP over vertex sets: ``best[S]`` = fewest edges covering at
    least the vertices in S.  Patterns are constant-size (≤ ~16
    vertices), so the 2^n DP is exact and fast.  Known identities used
    in tests: β(K_r) = ⌈r/2⌉ and β(C_r) = ⌈r/2⌉ (footnote 1).
    """
    _require_min_degree_one(graph)
    n = graph.n
    if n > 20:
        raise PatternError(f"integral edge cover DP supports n <= 20, got {n}")
    full = (1 << n) - 1
    edge_masks = [(1 << u) | (1 << v) for u, v in graph.edges()]
    best: List[int] = [n + 1] * (1 << n)
    best[0] = 0
    for covered in range(1 << n):
        if best[covered] > n:
            continue
        # Cover the lowest uncovered vertex with each of its edges.
        remaining = full & ~covered
        if remaining == 0:
            continue
        lowest = (remaining & -remaining).bit_length() - 1
        for mask in edge_masks:
            if mask & (1 << lowest):
                after = covered | mask
                if best[covered] + 1 < best[after]:
                    best[after] = best[covered] + 1
    if best[full] > n:  # pragma: no cover - excluded by min-degree check
        raise PatternError("no edge cover found")
    return best[full]


def greedy_edge_cover(graph: Graph) -> List[Edge]:
    """A (not necessarily minimum) edge cover: maximal matching + patches.

    Used by baselines that only need *some* cover (Bera–Chakrabarti
    style space accounting), not the optimum.
    """
    _require_min_degree_one(graph)
    cover: List[Edge] = []
    covered = set()
    for u, v in graph.edges():
        if u not in covered and v not in covered:
            cover.append((u, v))
            covered.update((u, v))
    for v in graph.vertices():
        if v not in covered:
            u = graph.neighbors(v)[0]
            cover.append((min(u, v), max(u, v)))
            covered.add(v)
    return cover
