"""Pattern (target subgraph H) substrate.

Provides the quantities the paper's bounds are parameterized by:
fractional edge cover ρ(H) (Definition 3), integral edge cover β(H),
the odd-cycle/star decomposition of Lemma 4, canonical cycles and
stars (Definitions 13–14), and the normalisation count f_T(H) used by
the FGP sampler.
"""

from repro.patterns.pattern import Pattern
from repro.patterns.edge_cover import (
    fractional_edge_cover_number,
    fractional_edge_cover,
    fractional_vertex_cover_number,
    integral_edge_cover_number,
)
from repro.patterns.decomposition import (
    CycleStarDecomposition,
    Piece,
    decompose,
    decomposition_cost,
    family_normalisation_count,
)
from repro.patterns.canonical import (
    canonical_cycle_sequence,
    canonical_star_sequence,
    is_canonical_cycle,
    is_canonical_star,
)
from repro.patterns.agm import (
    AgmCheck,
    agm_bound,
    one_pass_lower_bound_scale,
    verify_agm,
)
from repro.patterns.automorphisms import automorphism_count, automorphisms
from repro.patterns.isomorphism import (
    count_spanning_copies,
    enumerate_copies,
    enumerate_spanning_copies,
    is_subgraph_of,
)

__all__ = [
    "Pattern",
    "fractional_edge_cover_number",
    "fractional_edge_cover",
    "fractional_vertex_cover_number",
    "integral_edge_cover_number",
    "CycleStarDecomposition",
    "Piece",
    "decompose",
    "decomposition_cost",
    "family_normalisation_count",
    "canonical_cycle_sequence",
    "canonical_star_sequence",
    "is_canonical_cycle",
    "is_canonical_star",
    "AgmCheck",
    "agm_bound",
    "one_pass_lower_bound_scale",
    "verify_agm",
    "automorphism_count",
    "automorphisms",
    "count_spanning_copies",
    "enumerate_copies",
    "enumerate_spanning_copies",
    "is_subgraph_of",
]
