"""Canonical cycles and stars (Definitions 13 and 14).

A sequence of vertices (u_1, ..., u_k) is a *canonical k-cycle* in
(E', ≺) if consecutive vertices (cyclically) are adjacent in E',
u_1 ≺ u_i for all i >= 2, and u_k ≺ u_2 (i.e. the start is the
≺-minimum and the orientation is fixed by comparing the two neighbors
of the start).  A sequence (u_0, u_1, ..., u_k) is a *canonical
k-star* if u_0 is adjacent to every u_i and the petals are strictly
≺-increasing.

Every cycle subgraph has exactly one canonical sequence; every star
subgraph with a distinguished center has exactly one.  The FGP
sampler's per-family probability accounting rests on this uniqueness,
which the property tests verify.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.errors import PatternError
from repro.graph.order import VertexOrder

EdgePredicate = Callable[[int, int], bool]


def is_canonical_cycle(
    sequence: Sequence[int], order: VertexOrder, has_edge: EdgePredicate
) -> bool:
    """Whether *sequence* is a canonical cycle under (has_edge, ≺)."""
    k = len(sequence)
    if k < 3 or len(set(sequence)) != k:
        return False
    for i in range(k):
        if not has_edge(sequence[i], sequence[(i + 1) % k]):
            return False
    first = sequence[0]
    for other in sequence[1:]:
        if not order.precedes(first, other):
            return False
    return order.precedes(sequence[-1], sequence[1])


def is_canonical_star(
    sequence: Sequence[int], order: VertexOrder, has_edge: EdgePredicate
) -> bool:
    """Whether *sequence* = (center, petals...) is a canonical star."""
    if len(sequence) < 2 or len(set(sequence)) != len(sequence):
        return False
    center, petals = sequence[0], sequence[1:]
    for petal in petals:
        if not has_edge(center, petal):
            return False
    return all(order.precedes(a, b) for a, b in zip(petals, petals[1:]))


def canonical_cycle_sequence(
    cycle: Sequence[int], order: VertexOrder
) -> Tuple[int, ...]:
    """The unique canonical sequence of a cycle given in cyclic order.

    Rotates so the ≺-minimum comes first, then reflects so the last
    element ≺ the second.
    """
    k = len(cycle)
    if k < 3:
        raise PatternError(f"cycle must have >= 3 vertices, got {cycle}")
    start_index = min(range(k), key=lambda i: order.key(cycle[i]))
    rotated = [cycle[(start_index + i) % k] for i in range(k)]
    if order.precedes(rotated[1], rotated[-1]):
        rotated = [rotated[0]] + rotated[1:][::-1]
    return tuple(rotated)


def canonical_star_sequence(
    center: int, petals: Sequence[int], order: VertexOrder
) -> Tuple[int, ...]:
    """The unique canonical sequence (center, sorted petals)."""
    if not petals:
        raise PatternError("star needs at least one petal")
    return (center, *order.sorted(list(petals)))
