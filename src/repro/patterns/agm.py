"""The AGM bound and related count/space bounds from §1.

Atserias–Grohe–Marx [AGM08]: for any pattern H and host with m edges,

    #H <= m^ρ(H),

with ρ(H) the fractional edge-cover number (Definition 3).  The paper
leans on this twice: it makes the Theorem 1/17 space
~O(m^ρ/(ε²#H)) at most ~O(m^ρ) (never vacuous), and it orders the
related-work space bounds (ρ <= β <= |E(H)|).

Also here: the [KKP18] 1-pass turnstile lower-bound scale
~Ω(m/#H^{1/τ}) with τ the *fractional vertex-cover* number — the
quantity that certifies why the paper's 3-pass algorithms cannot be
collapsed into one pass at the same space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PatternError
from repro.exact.subgraphs import count_subgraphs
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


def agm_bound(pattern: Pattern, m: int) -> float:
    """The AGM upper bound m^ρ(H) on #H in any m-edge host."""
    if m < 0:
        raise PatternError(f"edge count must be >= 0, got {m}")
    return float(m) ** pattern.rho()


@dataclass(frozen=True)
class AgmCheck:
    """Outcome of verifying the AGM bound on one host/pattern pair."""

    pattern_name: str
    count: int
    bound: float

    @property
    def ratio(self) -> float:
        """#H / m^ρ(H) — must be <= 1 by [AGM08]."""
        if self.bound == 0:
            return 0.0 if self.count == 0 else float("inf")
        return self.count / self.bound

    @property
    def holds(self) -> bool:
        return self.count <= self.bound + 1e-9


def verify_agm(host: Graph, pattern: Pattern) -> AgmCheck:
    """Exactly count #H in *host* and compare against m^ρ(H)."""
    count = count_subgraphs(host, pattern)
    return AgmCheck(
        pattern_name=pattern.name,
        count=count,
        bound=agm_bound(pattern, host.m),
    )


def one_pass_lower_bound_scale(pattern: Pattern, m: int, count: float) -> float:
    """The [KKP18] 1-pass turnstile space scale ~Ω(m / #H^{1/τ}).

    τ is the fractional vertex-cover number of H.  A multi-pass
    algorithm beating this scale (as Theorems 1/17 do at 3 passes for
    ρ-heavy patterns) certifies that the extra passes are doing work.
    """
    if m < 0:
        raise PatternError(f"edge count must be >= 0, got {m}")
    if count <= 0:
        return float(m)
    tau = pattern.tau()
    return m / count ** (1.0 / tau)
