"""Copy enumeration for constant-size hosts.

The FGP postprocessing works on the induced subgraph G[U] where
|U| = |V(H)| — a constant-size graph — and needs:

* all copies of H *spanning* U (vertex set exactly U), possibly
  constrained to contain a given edge set (the sampled pieces);
* a cheap "does G[U] contain a spanning copy at all" predicate.

A *copy* is a subgraph: we represent it by its frozen edge set.  Each
copy corresponds to |Aut(H)| injective homomorphisms; enumeration
dedupes through the edge-set representation.

These routines are for constant-size inputs; counting #H in the full
host graph lives in :mod:`repro.exact.subgraphs`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import PatternError
from repro.graph.graph import Edge, Graph, normalize_edge

Copy = FrozenSet[Edge]

_MAX_HOST = 16


def _matching_order(pattern: Graph) -> List[int]:
    """Pattern vertices ordered so each (after the first per component)
    has a neighbor earlier in the order — keeps backtracking connected
    within components and prunes early."""
    order: List[int] = []
    placed: Set[int] = set()
    remaining = set(pattern.vertices())
    while remaining:
        # Start a new component at the max-degree unplaced vertex.
        start = max(remaining, key=pattern.degree)
        frontier = [start]
        while frontier:
            frontier.sort(key=lambda v: (-sum(1 for w in pattern.neighbors(v) if w in placed), -pattern.degree(v)))
            v = frontier.pop(0)
            if v in placed:
                continue
            order.append(v)
            placed.add(v)
            remaining.discard(v)
            for w in pattern.neighbors(v):
                if w not in placed and w in remaining:
                    frontier.append(w)
        # Disconnected pattern: loop continues with the next component.
    return order


def _injective_maps(
    host: Graph, pattern: Graph, allowed: Sequence[int]
) -> Iterator[Dict[int, int]]:
    """All injective homomorphisms pattern -> host[allowed].

    Only requires pattern edges to map to host edges (subgraph, not
    induced).
    """
    order = _matching_order(pattern)
    allowed_list = list(allowed)
    mapping: Dict[int, int] = {}
    used: Set[int] = set()

    def extend(index: int) -> Iterator[Dict[int, int]]:
        if index == len(order):
            yield dict(mapping)
            return
        v = order[index]
        earlier_neighbors = [w for w in pattern.neighbors(v) if w in mapping]
        for candidate in allowed_list:
            if candidate in used:
                continue
            if host.degree(candidate) < pattern.degree(v):
                continue
            if all(host.has_edge(mapping[w], candidate) for w in earlier_neighbors):
                mapping[v] = candidate
                used.add(candidate)
                yield from extend(index + 1)
                used.discard(candidate)
                del mapping[v]

    yield from extend(0)


def _copy_edges(pattern: Graph, mapping: Dict[int, int]) -> Copy:
    return frozenset(normalize_edge(mapping[u], mapping[v]) for u, v in pattern.edges())


def enumerate_spanning_copies(
    host: Graph,
    pattern: Graph,
    vertex_set: Sequence[int],
    required_edges: Optional[Set[Edge]] = None,
) -> List[Copy]:
    """Copies of *pattern* with vertex set exactly *vertex_set*.

    Each copy is a frozenset of host edges.  With *required_edges*,
    only copies whose edge set contains all of them are returned —
    this is the "which copies does the sampled family witness" query
    of the FGP postprocessing.
    """
    vertices = list(dict.fromkeys(vertex_set))
    if len(vertices) != pattern.n:
        return []
    if len(vertices) > _MAX_HOST:
        raise PatternError(f"spanning-copy enumeration supports <= {_MAX_HOST} vertices")
    normalized_required: Set[Edge] = set()
    if required_edges:
        normalized_required = {normalize_edge(u, v) for u, v in required_edges}
    seen: Set[Copy] = set()
    copies: List[Copy] = []
    for mapping in _injective_maps(host, pattern, vertices):
        edges = _copy_edges(pattern, mapping)
        if edges in seen:
            continue
        seen.add(edges)
        if normalized_required and not normalized_required.issubset(edges):
            continue
        copies.append(edges)
    return copies


def count_spanning_copies(host: Graph, pattern: Graph, vertex_set: Sequence[int]) -> int:
    """Number of copies of *pattern* spanning *vertex_set* in *host*."""
    return len(enumerate_spanning_copies(host, pattern, vertex_set))


def enumerate_copies(host: Graph, pattern: Graph) -> List[Copy]:
    """All copies of *pattern* anywhere in *host* (small hosts only).

    Intended for tests and for the postprocessing view; quadratic-ish
    blowup makes it unsuitable for large hosts.
    """
    if host.n > _MAX_HOST:
        raise PatternError(f"enumerate_copies supports hosts with <= {_MAX_HOST} vertices")
    seen: Set[Copy] = set()
    for mapping in _injective_maps(host, pattern, list(host.vertices())):
        seen.add(_copy_edges(pattern, mapping))
    return sorted(seen, key=sorted)


def is_subgraph_of(host: Graph, pattern: Graph) -> bool:
    """Whether *host* contains at least one copy of *pattern*."""
    for _ in _injective_maps(host, pattern, list(host.vertices())):
        return True
    return False
