"""Lemma 4: decomposing H into vertex-disjoint odd cycles and stars.

Every pattern H (min degree >= 1) can be partitioned into vertex-
disjoint odd cycles C_1..C_α and stars S_1..S_β with
ρ(H) = Σ ρ(C_i) + Σ ρ(S_j), where ρ(C_{2k+1}) = k + 1/2 and
ρ(S_k) = k.  The FGP sampler samples one canonical piece per
decomposition part.

We compute an *optimal* decomposition exactly by dynamic programming
over vertex subsets (patterns are constant-size), and verify in tests
that its cost equals the LP value ρ(H) — this is precisely the
statement of Lemma 4.

This module also computes f_T(H), the number of ordered canonical
piece-families that decompose a fixed copy of H.  The FGP sampler
accepts with probability 1/f_T(H) so each copy is returned with
probability exactly 1/(2m)^ρ(H) (Lemma 15); see
``repro/fgp/sampler.py`` for the accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PatternError
from repro.graph.graph import Graph

_MAX_PATTERN_VERTICES = 14


@dataclass(frozen=True)
class Piece:
    """One decomposition part: an odd cycle or a star.

    For a cycle, ``vertices`` lists the cycle in cyclic order.  For a
    star, ``vertices[0]`` is the center and the rest are petals.
    """

    kind: str  # "cycle" | "star"
    vertices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("cycle", "star"):
            raise PatternError(f"unknown piece kind {self.kind!r}")
        if self.kind == "cycle":
            if len(self.vertices) < 3 or len(self.vertices) % 2 == 0:
                raise PatternError(f"cycle piece must have odd length >= 3, got {self.vertices}")
        elif len(self.vertices) < 2:
            raise PatternError(f"star piece needs a center and >= 1 petal, got {self.vertices}")

    @property
    def size(self) -> int:
        """Number of vertices in the piece."""
        return len(self.vertices)

    @property
    def cost(self) -> Fraction:
        """ρ of the piece: (2k+1)/2 for C_{2k+1}, k for S_k."""
        if self.kind == "cycle":
            return Fraction(len(self.vertices), 2)
        return Fraction(len(self.vertices) - 1, 1)

    @property
    def petals(self) -> int:
        """Number of petals (stars only)."""
        if self.kind != "star":
            raise PatternError("petals is only defined for star pieces")
        return len(self.vertices) - 1

    @property
    def length(self) -> int:
        """Cycle length (cycles only)."""
        if self.kind != "cycle":
            raise PatternError("length is only defined for cycle pieces")
        return len(self.vertices)


@dataclass(frozen=True)
class CycleStarDecomposition:
    """A Lemma 4 decomposition of a pattern H.

    ``pieces`` is a witness partition of V(H); the *type* T of the
    decomposition — what the sampler actually consumes — is the
    multiset of cycle lengths and star petal counts, exposed in a
    fixed deterministic order (descending size, cycles first).
    """

    pieces: Tuple[Piece, ...]

    @property
    def cycle_lengths(self) -> Tuple[int, ...]:
        """Odd cycle lengths c_1 >= c_2 >= ..."""
        return tuple(
            sorted((p.length for p in self.pieces if p.kind == "cycle"), reverse=True)
        )

    @property
    def star_petals(self) -> Tuple[int, ...]:
        """Star petal counts s_1 >= s_2 >= ..."""
        return tuple(
            sorted((p.petals for p in self.pieces if p.kind == "star"), reverse=True)
        )

    @property
    def cost(self) -> Fraction:
        """Total ρ of the decomposition; equals ρ(H) by Lemma 4."""
        return sum((p.cost for p in self.pieces), Fraction(0))

    def type_signature(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(cycle lengths, star petal counts) — the sampler's input."""
        return (self.cycle_lengths, self.star_petals)


def decomposition_cost(decomposition: CycleStarDecomposition) -> float:
    """Cost of a decomposition as a float (Σ piece ρ's)."""
    return float(decomposition.cost)


# ---------------------------------------------------------------------------
# Optimal decomposition by subset DP
# ---------------------------------------------------------------------------


def _spanning_star_centers(adjacency_masks: Sequence[int], subset: int) -> Iterator[int]:
    """Centers c in *subset* adjacent to every other subset vertex."""
    rest = subset
    while rest:
        low = rest & -rest
        center = low.bit_length() - 1
        rest ^= low
        others = subset & ~(1 << center)
        if others and adjacency_masks[center] & others == others:
            yield center


def _hamiltonian_cycle_table(graph: Graph) -> List[bool]:
    """``table[mask]``: does H[mask] contain a Hamiltonian cycle?

    Classic Held–Karp reachability: paths anchored at the lowest
    vertex of the mask.  Only masks with odd popcount >= 3 are ever
    queried, but the table is filled for all masks.
    """
    n = graph.n
    adjacency = [0] * n
    for u, v in graph.edges():
        adjacency[u] |= 1 << v
        adjacency[v] |= 1 << u

    table = [False] * (1 << n)
    for mask in range(1, 1 << n):
        if mask.bit_count() < 3:
            continue
        start = (mask & -mask).bit_length() - 1
        # reach[last] = set of sub-masks is too big; instead DP on
        # (visited, last) for this mask's submasks anchored at start.
        # We compute per-mask to keep memory at O(2^n * n) bools total.
        reachable: Dict[Tuple[int, int], bool] = {}

        def path_exists(visited: int, last: int) -> bool:
            if visited == (1 << start) | (1 << last) and start != last:
                return bool(adjacency[start] & (1 << last))
            key = (visited, last)
            cached = reachable.get(key)
            if cached is not None:
                return cached
            result = False
            previous_candidates = adjacency[last] & visited & ~(1 << last)
            rest = previous_candidates
            while rest and not result:
                low = rest & -rest
                previous = low.bit_length() - 1
                rest ^= low
                if previous == start and visited != (1 << start) | (1 << last):
                    continue
                result = path_exists(visited & ~(1 << last), previous)
            reachable[key] = result
            return result

        found = False
        closers = adjacency[start] & mask
        rest = closers
        while rest and not found:
            low = rest & -rest
            last = low.bit_length() - 1
            rest ^= low
            if last != start and path_exists(mask, last):
                found = True
        table[mask] = found
    return table


def _extract_hamiltonian_cycle(graph: Graph, subset_vertices: List[int]) -> List[int]:
    """One Hamiltonian cycle of H[subset] in cyclic order (must exist)."""
    size = len(subset_vertices)
    start = subset_vertices[0]
    order: List[int] = [start]
    used = {start}

    def backtrack() -> bool:
        if len(order) == size:
            return graph.has_edge(order[-1], start)
        for w in subset_vertices:
            if w not in used and graph.has_edge(order[-1], w):
                used.add(w)
                order.append(w)
                if backtrack():
                    return True
                order.pop()
                used.remove(w)
        return False

    if not backtrack():  # pragma: no cover - caller guarantees existence
        raise PatternError(f"no Hamiltonian cycle on {subset_vertices}")
    return order


def decompose(graph: Graph) -> CycleStarDecomposition:
    """An optimal Lemma 4 decomposition of *graph*.

    Exact subset DP: ``best[S]`` = cheapest partition of vertex set S
    into odd-cycle/star pieces (2x cost stored as an int to stay
    exact).  By Lemma 4, ``best[V] == 2 ρ(H)``; the test suite checks
    this against the LP.
    """
    n = graph.n
    if n == 0:
        raise PatternError("cannot decompose the empty pattern")
    if n > _MAX_PATTERN_VERTICES:
        raise PatternError(
            f"decomposition DP supports patterns with <= {_MAX_PATTERN_VERTICES} vertices, got {n}"
        )
    for v in graph.vertices():
        if graph.degree(v) == 0:
            raise PatternError(f"vertex {v} is isolated; Lemma 4 needs min degree >= 1")

    adjacency = [0] * n
    for u, v in graph.edges():
        adjacency[u] |= 1 << v
        adjacency[v] |= 1 << u

    has_cycle = _hamiltonian_cycle_table(graph)
    full = (1 << n) - 1
    infinity = 10 * n
    best: List[int] = [infinity] * (1 << n)
    best[0] = 0
    # choice[S] = (piece_mask, kind, center_or_minus1)
    choice: List[Optional[Tuple[int, str, int]]] = [None] * (1 << n)

    for covered in range(1 << n):
        if best[covered] >= infinity:
            continue
        remaining = full & ~covered
        if remaining == 0:
            continue
        lowest_bit = remaining & -remaining
        # Enumerate submasks of `remaining` that contain the lowest
        # uncovered vertex (piece containing it).
        rest_pool = remaining & ~lowest_bit
        submask = rest_pool
        while True:
            piece_mask = submask | lowest_bit
            size = piece_mask.bit_count()
            if size >= 2:
                # Star option: cost2 = 2 * (size - 1).
                centers = list(_spanning_star_centers(adjacency, piece_mask))
                if centers:
                    candidate = best[covered] + 2 * (size - 1)
                    target = covered | piece_mask
                    if candidate < best[target]:
                        best[target] = candidate
                        choice[target] = (piece_mask, "star", centers[0])
                # Odd-cycle option: cost2 = size.
                if size >= 3 and size % 2 == 1 and has_cycle[piece_mask]:
                    candidate = best[covered] + size
                    target = covered | piece_mask
                    if candidate < best[target]:
                        best[target] = candidate
                        choice[target] = (piece_mask, "cycle", -1)
            if submask == 0:
                break
            submask = (submask - 1) & rest_pool

    if best[full] >= infinity:  # pragma: no cover - Lemma 4 guarantees existence
        raise PatternError("no odd-cycle/star decomposition found")

    # Reconstruct the witness pieces.
    pieces: List[Piece] = []
    cursor = full
    while cursor:
        piece_mask, kind, center = choice[cursor]  # type: ignore[misc]
        members = [v for v in range(n) if piece_mask & (1 << v)]
        if kind == "star":
            petals = tuple(v for v in members if v != center)
            pieces.append(Piece("star", (center, *petals)))
        else:
            order = _extract_hamiltonian_cycle(graph, members)
            pieces.append(Piece("cycle", tuple(order)))
        cursor &= ~piece_mask

    pieces.sort(key=lambda p: (p.kind, -p.size, p.vertices))
    return CycleStarDecomposition(tuple(pieces))


# ---------------------------------------------------------------------------
# f_T(H): ordered canonical families per copy
# ---------------------------------------------------------------------------


def _enumerate_cycles(graph: Graph, allowed: Tuple[int, ...], length: int) -> Iterator[Tuple[int, ...]]:
    """Distinct cycles of *length* within *allowed* vertices.

    Each cycle subgraph is yielded exactly once, as the vertex
    sequence starting at its minimum vertex with the smaller second
    vertex (fixing rotation and reflection).
    """
    allowed_set = set(allowed)

    def extend(sequence: List[int]) -> Iterator[Tuple[int, ...]]:
        if len(sequence) == length:
            if graph.has_edge(sequence[-1], sequence[0]) and sequence[1] < sequence[-1]:
                yield tuple(sequence)
            return
        for w in allowed_set:
            if w in sequence or not graph.has_edge(sequence[-1], w):
                continue
            if w < sequence[0]:
                continue  # start must be the minimum
            sequence.append(w)
            yield from extend(sequence)
            sequence.pop()

    for start in sorted(allowed_set):
        yield from extend([start])


def _enumerate_stars(
    graph: Graph, allowed: Tuple[int, ...], petals: int
) -> Iterator[Tuple[int, Tuple[int, ...]]]:
    """(center, petal-set) pairs with the given petal count in *allowed*.

    For petals == 1 both orientations of an edge appear — exactly the
    two canonical 1-star sequences of Definition 14.
    """
    allowed_set = set(allowed)
    for center in allowed:
        neighbors = [w for w in graph.neighbors(center) if w in allowed_set]
        if len(neighbors) < petals:
            continue
        for petal_set in itertools.combinations(sorted(neighbors), petals):
            yield center, petal_set


def family_normalisation_count(
    graph: Graph, decomposition: CycleStarDecomposition
) -> int:
    """f_T(H): ordered canonical piece-families decomposing H.

    A *family* assigns to every decomposition position (first the
    cycles of T in descending length, then the stars in descending
    petal count) a concrete canonical piece inside H, such that the
    pieces are vertex-disjoint and cover V(H).  Canonical sequences
    (Definitions 13–14) are in bijection with (cycle subgraph) /
    (center, petal-set) choices for *any* total vertex order, so the
    count is isomorphism-invariant and can be computed on H itself.

    The FGP sampler produces each family with probability
    (1/2m)^ρ(H), and f_T(H) is the per-copy multiplicity it divides
    out (Lemma 15).
    """
    positions: List[Tuple[str, int]] = [
        ("cycle", c) for c in decomposition.cycle_lengths
    ] + [("star", s) for s in decomposition.star_petals]
    all_vertices = tuple(graph.vertices())

    def count_from(index: int, remaining: Tuple[int, ...]) -> int:
        if index == len(positions):
            return 1 if not remaining else 0
        kind, size_parameter = positions[index]
        total = 0
        if kind == "cycle":
            for cycle_vertices in _enumerate_cycles(graph, remaining, size_parameter):
                rest = tuple(v for v in remaining if v not in cycle_vertices)
                total += count_from(index + 1, rest)
        else:
            for center, petal_set in _enumerate_stars(graph, remaining, size_parameter):
                used = {center, *petal_set}
                rest = tuple(v for v in remaining if v not in used)
                total += count_from(index + 1, rest)
        return total

    count = count_from(0, all_vertices)
    if count <= 0:  # pragma: no cover - decomposition itself is a family
        raise PatternError("f_T(H) must be positive; decomposition inconsistent")
    return count
