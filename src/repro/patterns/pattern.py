"""The target subgraph H.

A :class:`Pattern` is a small, connected-or-not, simple graph together
with lazily computed invariants (ρ(H), its Lemma 4 decomposition,
automorphism count, f_T(H)).  Streaming algorithms are parameterized
by a pattern; the estimator layer reads its invariants to size trial
budgets.

Patterns must have minimum degree >= 1: an isolated vertex admits no
edge cover, and the FGP sampler covers every pattern vertex with a
cycle or star piece.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PatternError
from repro.graph.graph import Edge, Graph


class Pattern:
    """A constant-size target subgraph H.

    Thin immutable wrapper around :class:`Graph` with a display name
    and cached invariants.  Use the module-level constructors
    (:func:`triangle`, :func:`clique`, ...) for the standard zoo.
    """

    def __init__(self, graph: Graph, name: Optional[str] = None) -> None:
        if graph.n == 0:
            raise PatternError("pattern must have at least one vertex")
        for v in graph.vertices():
            if graph.degree(v) == 0:
                raise PatternError(
                    f"pattern vertex {v} is isolated; no edge cover exists (Definition 3)"
                )
        self._graph = graph.copy()
        self._name = name or f"H(n={graph.n},m={graph.m})"
        self._cache: Dict[str, object] = {}

    # -- structure -----------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable name used in experiment tables."""
        return self._name

    @property
    def graph(self) -> Graph:
        """The underlying pattern graph (do not mutate)."""
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.n

    @property
    def num_edges(self) -> int:
        return self._graph.m

    def edges(self) -> Iterable[Edge]:
        return self._graph.edges()

    def degree(self, v: int) -> int:
        return self._graph.degree(v)

    def __repr__(self) -> str:
        return f"Pattern({self._name!r}, n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._graph == other._graph

    def __hash__(self) -> int:
        return hash(self._graph)

    # -- cached invariants ----------------------------------------------

    def rho(self) -> float:
        """Fractional edge-cover number ρ(H) (Definition 3)."""
        if "rho" not in self._cache:
            from repro.patterns.edge_cover import fractional_edge_cover_number

            self._cache["rho"] = fractional_edge_cover_number(self._graph)
        return self._cache["rho"]  # type: ignore[return-value]

    def beta(self) -> int:
        """Integral edge-cover number β(H)."""
        if "beta" not in self._cache:
            from repro.patterns.edge_cover import integral_edge_cover_number

            self._cache["beta"] = integral_edge_cover_number(self._graph)
        return self._cache["beta"]  # type: ignore[return-value]

    def tau(self) -> float:
        """Fractional vertex-cover number τ(H) (the [KKP18] parameter)."""
        if "tau" not in self._cache:
            from repro.patterns.edge_cover import fractional_vertex_cover_number

            self._cache["tau"] = fractional_vertex_cover_number(self._graph)
        return self._cache["tau"]  # type: ignore[return-value]

    def decomposition(self):
        """The Lemma 4 odd-cycle/star decomposition of H."""
        if "decomposition" not in self._cache:
            from repro.patterns.decomposition import decompose

            self._cache["decomposition"] = decompose(self._graph)
        return self._cache["decomposition"]

    def family_count(self) -> int:
        """f_T(H): ordered canonical piece-families per copy (see fgp)."""
        if "family_count" not in self._cache:
            from repro.patterns.decomposition import family_normalisation_count

            self._cache["family_count"] = family_normalisation_count(
                self._graph, self.decomposition()
            )
        return self._cache["family_count"]  # type: ignore[return-value]

    def automorphism_count(self) -> int:
        """|Aut(H)|, used to convert labelled matches to copies."""
        if "aut" not in self._cache:
            from repro.patterns.automorphisms import automorphism_count

            self._cache["aut"] = automorphism_count(self._graph)
        return self._cache["aut"]  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# The standard pattern zoo
# ---------------------------------------------------------------------------


def edge() -> Pattern:
    """A single edge K_2 (ρ = 1)."""
    return Pattern(Graph(2, [(0, 1)]), name="edge")


def triangle() -> Pattern:
    """The triangle K_3 = C_3 (ρ = 3/2)."""
    return Pattern(Graph(3, [(0, 1), (1, 2), (0, 2)]), name="triangle")


def clique(r: int) -> Pattern:
    """K_r (ρ = r/2)."""
    if r < 2:
        raise PatternError(f"clique needs r >= 2, got {r}")
    return Pattern(
        Graph(r, itertools.combinations(range(r), 2)), name=f"K{r}"
    )


def cycle(k: int) -> Pattern:
    """C_k (ρ = k/2; for odd k = 2t+1, ρ = t + 1/2)."""
    if k < 3:
        raise PatternError(f"cycle needs k >= 3, got {k}")
    return Pattern(Graph(k, [(i, (i + 1) % k) for i in range(k)]), name=f"C{k}")


def star(k: int) -> Pattern:
    """S_k: star with k petals, center 0 (ρ = k)."""
    if k < 1:
        raise PatternError(f"star needs k >= 1 petals, got {k}")
    return Pattern(Graph(k + 1, [(0, i) for i in range(1, k + 1)]), name=f"S{k}")


def path(num_vertices: int) -> Pattern:
    """P_k: path on *num_vertices* vertices."""
    if num_vertices < 2:
        raise PatternError(f"path needs >= 2 vertices, got {num_vertices}")
    return Pattern(
        Graph(num_vertices, [(i, i + 1) for i in range(num_vertices - 1)]),
        name=f"P{num_vertices}",
    )


def matching(k: int) -> Pattern:
    """k disjoint edges (ρ = k)."""
    if k < 1:
        raise PatternError(f"matching needs k >= 1 edges, got {k}")
    return Pattern(
        Graph(2 * k, [(2 * i, 2 * i + 1) for i in range(k)]), name=f"M{k}"
    )


def paw() -> Pattern:
    """Triangle with a pendant edge (ρ = 2)."""
    return Pattern(Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)]), name="paw")


def diamond() -> Pattern:
    """K_4 minus an edge (ρ = 2)."""
    return Pattern(Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]), name="diamond")


def triangle_with_disjoint_edge() -> Pattern:
    """Disconnected pattern: K_3 plus an independent edge (ρ = 5/2)."""
    return Pattern(
        Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)]), name="K3+e"
    )


def bull() -> Pattern:
    """Triangle with two disjoint pendant horns (ρ = 3)."""
    return Pattern(
        Graph(5, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)]), name="bull"
    )


def house() -> Pattern:
    """C5 plus one chord: a square with a triangular roof (ρ = 5/2)."""
    return Pattern(
        Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]),
        name="house",
    )


def bowtie() -> Pattern:
    """Two triangles sharing a vertex (ρ = 5/2)."""
    return Pattern(
        Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]),
        name="bowtie",
    )


def kite() -> Pattern:
    """Diamond with a pendant tail (ρ = 5/2)."""
    return Pattern(
        Graph(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]),
        name="kite",
    )


def gem() -> Pattern:
    """P4 plus a dominating apex vertex (ρ = 5/2)."""
    return Pattern(
        Graph(5, [(0, 1), (1, 2), (2, 3), (4, 0), (4, 1), (4, 2), (4, 3)]),
        name="gem",
    )


def book(pages: int) -> Pattern:
    """B_k: *pages* triangles sharing one common edge.

    B_1 is the triangle (ρ = 3/2), B_2 the diamond (ρ = 2); for k >= 2
    the LP gives ρ(B_k) = k.  Larger books exercise high-multiplicity
    shared-edge patterns.
    """
    if pages < 1:
        raise PatternError(f"book needs >= 1 page, got {pages}")
    edges = [(0, 1)]
    for i in range(pages):
        apex = 2 + i
        edges.extend([(0, apex), (1, apex)])
    return Pattern(Graph(2 + pages, edges), name=f"B{pages}")


def wheel(spokes: int) -> Pattern:
    """W_k: a C_k rim plus a hub joined to every rim vertex."""
    if spokes < 3:
        raise PatternError(f"wheel needs >= 3 spokes, got {spokes}")
    edges = [(i, (i + 1) % spokes) for i in range(spokes)]
    edges.extend((spokes, i) for i in range(spokes))
    return Pattern(Graph(spokes + 1, edges), name=f"W{spokes}")


def prism() -> Pattern:
    """The triangular prism C3 × K2 (ρ = 3)."""
    return Pattern(
        Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 3), (1, 4), (2, 5)]),
        name="prism",
    )


def complete_bipartite(a: int, b: int) -> Pattern:
    """K_{a,b} (ρ = max(a, b) for a ≠ b by LP duality; a wedge zoo staple)."""
    if a < 1 or b < 1:
        raise PatternError(f"complete bipartite needs a, b >= 1, got ({a}, {b})")
    return Pattern(
        Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)]),
        name=f"K{a},{b}",
    )


def extended_zoo() -> List[Pattern]:
    """standard_zoo plus the 5-vertex menagerie (full-mode sweeps)."""
    return standard_zoo() + [
        bull(),
        house(),
        bowtie(),
        kite(),
        gem(),
        book(3),
        wheel(4),
        prism(),
        complete_bipartite(2, 3),
        clique(5),
        star(4),
        path(5),
        cycle(6),
        matching(3),
    ]


def standard_zoo() -> List[Pattern]:
    """The pattern set the experiment suite sweeps over."""
    return [
        edge(),
        path(3),
        triangle(),
        path(4),
        matching(2),
        star(3),
        paw(),
        diamond(),
        cycle(4),
        clique(4),
        cycle(5),
        triangle_with_disjoint_edge(),
    ]


#: Known closed-form ρ values (used by E10 and the test suite):
#: ρ(C_{2k+1}) = k + 1/2, ρ(S_k) = k, ρ(K_k) = k/2, ρ(C_{2k}) = k.
KNOWN_RHO: Dict[str, float] = {
    "edge": 1.0,
    "P3": 2.0,  # P3 == S2, a star with 2 petals
    "triangle": 1.5,
    "P4": 2.0,
    "M2": 2.0,
    "S3": 3.0,
    "paw": 2.0,
    "diamond": 2.0,
    "C4": 2.0,
    "K4": 2.0,
    "C5": 2.5,
    "K3+e": 2.5,
    "K5": 2.5,
    "C6": 3.0,
    "C7": 3.5,
    "bull": 3.0,
    "house": 2.5,
    "bowtie": 2.5,
    "kite": 2.5,
    "P5": 3.0,
    "M3": 3.0,
    "S4": 4.0,
}
