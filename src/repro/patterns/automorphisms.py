"""Automorphisms of constant-size patterns.

|Aut(H)| converts between labelled matches (injective homomorphisms)
and copies (subgraphs): #copies = #injective-homs / |Aut(H)|.  The
exact counters and the homomorphism-sketch baselines both need it.

Patterns are constant-size, so backtracking over degree-compatible
permutations is exact and fast.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import PatternError
from repro.graph.graph import Graph

_MAX_VERTICES = 12


def automorphisms(graph: Graph) -> Iterator[Tuple[int, ...]]:
    """Yield every automorphism of *graph* as a permutation tuple.

    ``perm[v]`` is the image of vertex ``v``.  The identity is always
    yielded first.
    """
    n = graph.n
    if n > _MAX_VERTICES:
        raise PatternError(f"automorphism enumeration supports n <= {_MAX_VERTICES}, got {n}")
    degrees = graph.degrees()
    # Candidate images must preserve degree.
    candidates: List[List[int]] = [
        [u for u in range(n) if degrees[u] == degrees[v]] for v in range(n)
    ]
    assignment: Dict[int, int] = {}
    used = [False] * n

    def extend(v: int) -> Iterator[Tuple[int, ...]]:
        if v == n:
            yield tuple(assignment[i] for i in range(n))
            return
        for image in candidates[v]:
            if used[image]:
                continue
            consistent = True
            for w in graph.neighbors(v):
                if w < v and not graph.has_edge(assignment[w], image):
                    consistent = False
                    break
            if consistent:
                # Non-edges must also map to non-edges (bijection on V
                # with same edge count needs only edge preservation,
                # but checking both directions keeps the pruning tight
                # and the invariant obvious).
                for w in range(v):
                    if not graph.has_edge(w, v) and graph.has_edge(assignment[w], image):
                        consistent = False
                        break
            if consistent:
                assignment[v] = image
                used[image] = True
                yield from extend(v + 1)
                used[image] = False
                del assignment[v]

    yield from extend(0)


def automorphism_count(graph: Graph) -> int:
    """|Aut(H)|."""
    return sum(1 for _ in automorphisms(graph))
