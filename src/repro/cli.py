"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands mirror the library's main entry points so the algorithms
can be driven without writing Python:

* ``generate`` — write a synthetic graph as an edge list;
* ``convert``  — ingest a SNAP-style text edge list into the compact
  binary update format (``.reb`` memmap or ``.npz``), compacting raw
  vertex ids to ``[0, n)`` and deduplicating reversed/self-loop rows
  (:mod:`repro.streams.datasets`).  The converted file can be passed
  straight to ``count`` as an out-of-core stream; ``--shards N``
  additionally writes N hash-partitioned ``.shard-K-of-N.reb`` files
  (updates routed by normalized edge) for partitioned ingestion;
* ``exact``    — exact #H of an edge-list graph (ground truth);
* ``count``    — the paper's streaming counters (3-pass insertion-only,
  3-pass turnstile, or the 2-pass star-decomposable variant) on an
  edge-list graph streamed in random order.  ``--copies K`` runs
  median-of-K amplification through the fused engine in the same 3
  (resp. 2) passes, and ``--backend thread|process [--workers N]``
  shards those K copies across a pool of daemon threads or of worker
  processes fed through a shared-memory batch ring
  (:mod:`repro.engine.parallel`; ``--parallel`` is the historical
  alias for ``--backend process``); ``--mode mirror`` (the default)
  keeps the estimates identical across backends and worker counts for
  a fixed ``--seed``, ``--mode shared`` trades that for speed;
  ``--batch-size`` sets the columnar dispatch granularity (results
  are invariant to it — it only trades loop overhead against peak
  batch memory).  The graph argument may also be a converted
  ``.reb``/``.npz`` stream file: it is then streamed out of core in
  its stored order, with batch retention governed by ``--cache
  {all,lru,none}`` and ``--cache-budget BYTES`` (e.g. ``64M``).
  ``--shards N`` (turnstile only) switches to **partitioned
  ingestion** (:mod:`repro.engine.sharded`): the stream is split into
  N hash-partitioned shards — the files ``convert --shards`` wrote,
  or on-the-fly views — each fed to an independent replica of every
  estimator copy, with the linear sketch states merged before each
  pass closes; estimates stay bit-identical to the unsharded mirror
  run at any shard count, while resident memory is bounded per shard;
* ``live``     — open-ended **live estimation** over an update feed
  (:mod:`repro.engine.live`): K mirror copies of a streaming counter
  ingest updates incrementally from a converted ``.reb``/``.npz``
  stream, an edge-list graph, or stdin (``u v [delta]`` lines,
  ``-``); ``--query-every N`` prints a running median estimate
  mid-stream, ``--checkpoint PATH --checkpoint-every N`` writes
  versioned snapshots, and ``--resume`` restores the checkpoint and
  continues bit-identically to a run that never stopped;
* ``worlds``   — GraphWorld-style **scenario sweeps**
  (:mod:`repro.worlds`): a validated grid of generator families
  (Erdős–Rényi, preferential attachment, small-world,
  power-law-cluster, stochastic Kronecker, configuration model) ×
  stream scenarios (insertion, degree-adversarial, deletion-heavy,
  sliding-window) × estimator × pattern × space budget, each cell
  materialized to a ``.reb`` file and streamed out-of-core through
  :class:`~repro.streams.datasets.DiskEdgeStream`, emitting one
  schema-validated JSON table (accuracy, ε-violation, peak resident
  bytes, updates/s per cell).  Shape the grid with flags or a
  ``--grid`` JSON file; ``--cells`` filters cells by key substring,
  ``--resume`` continues a partial sweep, ``--list-cells`` previews
  the product without running it;
* ``ers``      — Theorem 2's clique counter for low-degeneracy graphs;
* ``covers``   — ρ(H), β(H), the Lemma 4 decomposition and f_T(H) for
  a zoo pattern;
* ``experiments`` — regenerate the E1–E17/A1 tables (delegates to
  :mod:`repro.experiments.runner`); ``--parallel [--workers N]``
  passes a process-backend pool to the backend-aware experiments
  (e14).

Patterns are named as in the zoo: ``edge``, ``triangle``, ``P3``/
``P4``/..., ``C4``/``C5``/..., ``S2``/``S3``/..., ``K4``/``K5``/...,
``M2``/..., plus ``paw``, ``diamond``, ``bull``, ``house``, ``bowtie``,
``kite``, ``gem``, ``prism``, ``B2``/``B3`` (books), ``W4``/``W5``
(wheels).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.patterns import pattern as zoo
from repro.patterns.pattern import Pattern


def parse_pattern(name: str) -> Pattern:
    """Resolve a zoo pattern from its CLI name (see module docstring)."""
    fixed = {
        "edge": zoo.edge,
        "triangle": zoo.triangle,
        "paw": zoo.paw,
        "diamond": zoo.diamond,
        "bull": zoo.bull,
        "house": zoo.house,
        "bowtie": zoo.bowtie,
        "kite": zoo.kite,
        "gem": zoo.gem,
        "prism": zoo.prism,
    }
    if name in fixed:
        return fixed[name]()
    families = {
        "P": lambda k: zoo.path(k),
        "C": lambda k: zoo.cycle(k),
        "S": lambda k: zoo.star(k),
        "K": lambda k: zoo.clique(k),
        "M": lambda k: zoo.matching(k),
        "B": lambda k: zoo.book(k),
        "W": lambda k: zoo.wheel(k),
    }
    prefix, suffix = name[:1], name[1:]
    if prefix in families and suffix.isdigit():
        return families[prefix](int(suffix))
    raise ReproError(
        f"unknown pattern {name!r}; see `repro covers --list` for options"
    )


def _known_pattern_names() -> List[str]:
    return sorted(p.name for p in zoo.extended_zoo())


def _generate(args: argparse.Namespace) -> int:
    builders = {
        "gnp": lambda: gen.gnp(args.n, args.p, rng=args.seed),
        "gnm": lambda: gen.gnm(args.n, args.m, rng=args.seed),
        "ba": lambda: gen.barabasi_albert(args.n, args.attach, rng=args.seed),
        "plc": lambda: gen.power_law_cluster(args.n, args.attach, args.p, args.seed),
        "ws": lambda: gen.watts_strogatz(args.n, args.attach, args.p, rng=args.seed),
        "rgg": lambda: gen.random_geometric(args.n, args.p, rng=args.seed),
        "grid": lambda: gen.grid_graph(args.n, args.m),
        "karate": gen.karate_club,
    }
    graph = builders[args.family]()
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.family} graph: n={graph.n} m={graph.m} "
        f"degeneracy={degeneracy(graph)} -> {args.output}"
    )
    return 0


def _convert(args: argparse.Namespace) -> int:
    from repro.streams.datasets import convert_edge_list, write_stream_shards

    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    stream = convert_edge_list(
        args.input,
        args.output,
        relabel=not args.no_relabel,
        dedupe=not args.keep_duplicates,
        chunk_lines=args.chunk_lines,
    )
    kind = "turnstile" if stream.allows_deletions else "insertion-only"
    print(
        f"wrote {kind} stream: n={stream.n} length={stream.length} "
        f"m={stream.net_edge_count} -> {stream.path}"
    )
    if args.shards is not None:
        paths = write_stream_shards(stream, args.shards)
        print(f"wrote {len(paths)} shard file(s): {paths[0]} .. {paths[-1]}")
    return 0


def _exact(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    pattern = parse_pattern(args.pattern)
    print(count_subgraphs(graph, pattern))
    return 0


def _resolve_cache_spec(args: argparse.Namespace) -> Optional[str]:
    """The cache-policy spec string from ``--cache``/``--cache-budget``
    (already validated by ``_count``'s usage checks)."""
    if args.cache is None:
        return None
    if args.cache == "lru" and args.cache_budget is not None:
        return f"lru:{args.cache_budget}"
    return args.cache


def _count(args: argparse.Namespace) -> int:
    from repro.streaming.adaptive import count_subgraphs_unknown
    from repro.streaming.three_pass import count_subgraphs_insertion_only
    from repro.streaming.turnstile import count_subgraphs_turnstile
    from repro.streaming.two_pass import count_subgraphs_two_pass
    from repro.streams.datasets import is_stream_path, open_disk_stream
    from repro.streams.generators import turnstile_churn_stream
    from repro.streams.stream import insertion_stream

    disk_input = is_stream_path(args.graph)
    pattern = parse_pattern(args.pattern)
    # --parallel is the historical alias for --backend process; an
    # explicit --backend serial alongside it is a contradiction.
    if args.parallel and args.backend == "serial":
        print("error: --parallel requests a worker pool; drop it or pick "
              "--backend thread|process", file=sys.stderr)
        return 2
    backend = args.backend or ("process" if args.parallel else "serial")
    sharded = args.shards is not None
    # An explicit --copies (any value — bad ones get the library's
    # validation error), a parallel backend, or partitioned ingestion
    # selects the fused path; otherwise the plain single-copy counters
    # run.
    fused = args.copies is not None or backend != "serial" or sharded
    copies = args.copies if args.copies is not None else (
        8 if backend != "serial" or sharded else 1
    )
    if sharded and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if sharded and args.algorithm != "turnstile":
        print("error: --shards requires --algorithm turnstile: the insertion "
              "paths answer from reservoir samplers whose draws depend on the "
              "global stream order, so per-shard states cannot be merged "
              "(MergeError); the turnstile L0-sketch state is linear and "
              "merges exactly", file=sys.stderr)
        return 2
    if sharded and args.adaptive:
        print("error: --adaptive cannot be combined with --shards",
              file=sys.stderr)
        return 2
    if sharded and args.mode == "shared":
        print("error: --shards runs mirror-mode replicas (merging requires "
              "identically seeded copies); drop --mode shared", file=sys.stderr)
        return 2
    if not fused and args.mode is not None:
        print("error: --mode requires a fused run (--copies K or a parallel "
              "--backend)", file=sys.stderr)
        return 2
    if args.workers is not None and backend == "serial":
        print("error: --workers requires --backend thread|process (or --parallel)",
              file=sys.stderr)
        return 2
    if args.batch_size is not None and not fused:
        print("error: --batch-size requires a fused run (--copies K or a "
              "parallel --backend)", file=sys.stderr)
        return 2
    if args.batch_size is not None and args.batch_size < 1:
        print(f"error: --batch-size must be >= 1, got {args.batch_size}",
              file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.cache_budget is not None and args.cache != "lru":
        print("error: --cache-budget requires --cache lru", file=sys.stderr)
        return 2
    cache = _resolve_cache_spec(args)

    # Build the stream: a converted file IS the stream (stored order;
    # --seed shuffling does not apply), an edge-list graph is streamed
    # per --algorithm.  Everything after this block — the fused /
    # one-shot counter dispatch and the summary — is shared, so disk
    # and in-memory inputs can never drift apart.
    if disk_input:
        if args.adaptive:
            print("error: --adaptive is not supported on converted stream files",
                  file=sys.stderr)
            return 2
        if args.churn is not None:
            print("error: --churn shapes the synthetic turnstile workload and has "
                  "no effect on a converted stream file (its deletions are "
                  "already stored)", file=sys.stderr)
            return 2
        graph = None
        disk_cache_spec = cache or "none"
        stream = open_disk_stream(args.graph, cache=disk_cache_spec)
        # The engine's cache= knob would re-apply the same policy; the
        # disk stream already carries it, so the dispatch passes None.
        cache = None
        if stream.allows_deletions and args.algorithm != "turnstile":
            print("error: stream file contains deletions; use --algorithm turnstile",
                  file=sys.stderr)
            return 2
    else:
        graph = read_edge_list(args.graph)
        churn = args.churn if args.churn is not None else 50
        if args.algorithm == "turnstile":
            stream = turnstile_churn_stream(graph, churn, rng=args.seed)
        else:
            stream = insertion_stream(graph, rng=args.seed)

    if args.adaptive:
        if fused:
            print("error: --adaptive cannot be combined with --copies or a "
                  "parallel --backend", file=sys.stderr)
            return 2
        result = count_subgraphs_unknown(
            stream, pattern, epsilon=args.epsilon, rng=args.seed + 1
        )
    elif sharded:
        # Partitioned ingestion: feed hash-partitioned shards to
        # replica estimators and merge the linear sketch states before
        # each pass closes (repro.engine.sharded).  Materialized shard
        # files (convert --shards) are preferred; otherwise on-the-fly
        # views partition the opened stream.  Estimates are
        # bit-identical to the unsharded mirror run at any shard count.
        from repro.engine import count_subgraphs_turnstile_sharded
        from repro.engine.core import DEFAULT_BATCH_SIZE
        from repro.streams.datasets import open_stream_shards, stream_shard_views

        if disk_input:
            try:
                shard_streams = open_stream_shards(
                    args.graph, args.shards, cache=disk_cache_spec
                )
            except ReproError:
                shard_streams = stream_shard_views(
                    stream, args.shards, cache=disk_cache_spec
                )
        else:
            shard_streams = stream_shard_views(stream, args.shards)
        result = count_subgraphs_turnstile_sharded(
            shard_streams,
            pattern,
            copies=copies,
            trials=args.trials,
            rng=args.seed + 1,
            backend=backend,
            workers=args.workers,
            batch_size=args.batch_size or DEFAULT_BATCH_SIZE,
        )
    elif fused:
        # Median-of-K amplification through the fused engine; on the
        # thread/process backends the K copies shard across a worker
        # pool.  Mirror mode keeps the estimates identical across
        # backends and worker counts for a fixed seed.
        from repro.engine import (
            count_subgraphs_insertion_only_fused,
            count_subgraphs_turnstile_fused,
            count_subgraphs_two_pass_fused,
        )
        from repro.engine.core import DEFAULT_BATCH_SIZE

        counter = {
            "turnstile": count_subgraphs_turnstile_fused,
            "two-pass": count_subgraphs_two_pass_fused,
            "insertion": count_subgraphs_insertion_only_fused,
        }[args.algorithm]
        result = counter(
            stream,
            pattern,
            copies=copies,
            trials=args.trials,
            rng=args.seed + 1,
            mode=args.mode or "mirror",
            backend=backend,
            workers=args.workers,
            batch_size=args.batch_size or DEFAULT_BATCH_SIZE,
            cache=cache,
        )
    else:
        if cache is not None:
            stream.set_cache_policy(cache)
        counter = {
            "turnstile": count_subgraphs_turnstile,
            "two-pass": count_subgraphs_two_pass,
            "insertion": count_subgraphs_insertion_only,
        }[args.algorithm]
        result = counter(stream, pattern, trials=args.trials, rng=args.seed + 1)
    print(result.summary())
    if args.truth:
        truth = count_subgraphs(graph if graph is not None else stream.final_graph(),
                                pattern)
        print(f"exact=#{truth} rel_err={result.error_vs(truth):.4f}")
    return 0


def _live_feed_chunks(args, allow_deletions: bool):
    """Yield ``(u, v, delta)`` column chunks of the requested feed.

    Returns ``(n, allow_deletions, iterator)``; the iterator never
    holds more than ``--feed-chunk`` updates at a time.
    """
    import numpy as np

    from repro.graph.io import read_edge_list
    from repro.streams.datasets import is_stream_path, open_disk_stream
    from repro.streams.stream import insertion_stream

    chunk = args.feed_chunk

    if args.input == "-":
        if args.n is None:
            raise ReproError("feeding from stdin requires --n (vertex universe)")

        def stdin_chunks():
            us, vs, ds = [], [], []
            for line in sys.stdin:
                line = line.strip()
                if not line or line[0] in "#%":
                    continue
                fields = line.split()
                if len(fields) < 2:
                    raise ReproError(f"stdin line needs 'u v [delta]': {line!r}")
                us.append(int(fields[0]))
                vs.append(int(fields[1]))
                ds.append(int(fields[2]) if len(fields) > 2 else 1)
                if len(us) >= chunk:
                    yield (
                        np.array(us, dtype=np.int64),
                        np.array(vs, dtype=np.int64),
                        np.array(ds, dtype=np.int64),
                    )
                    us, vs, ds = [], [], []
            if us:
                yield (
                    np.array(us, dtype=np.int64),
                    np.array(vs, dtype=np.int64),
                    np.array(ds, dtype=np.int64),
                )

        return args.n, allow_deletions, stdin_chunks()

    if is_stream_path(args.input):
        stream = open_disk_stream(args.input, cache="none")
    else:
        stream = insertion_stream(read_edge_list(args.input), rng=args.seed)

    def stream_chunks():
        for batch in stream.batches(chunk):
            yield (batch.u, batch.v, batch.delta)

    return stream.n, stream.allows_deletions, stream_chunks()


class _FullyDegraded(Exception):
    """Internal: the live engine lost every estimator copy mid-run."""


def _live(args: argparse.Namespace) -> int:
    from repro.engine import EstimatorSpec, LiveEngine, median_estimate
    from repro.engine.estimators import (
        fgp_insertion_estimator,
        fgp_turnstile_estimator,
        fgp_two_pass_estimator,
    )
    from repro.errors import EngineError, EstimationError

    if args.checkpoint_every and not args.checkpoint:
        print("error: --checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.max_deltas < 1:
        print(f"error: --max-deltas must be >= 1, got {args.max_deltas}",
              file=sys.stderr)
        return 2
    if args.copies < 1:
        print(f"error: --copies must be >= 1, got {args.copies}", file=sys.stderr)
        return 2

    pattern = parse_pattern(args.pattern)
    factory = {
        "insertion": fgp_insertion_estimator,
        "turnstile": fgp_turnstile_estimator,
        "two-pass": fgp_two_pass_estimator,
    }[args.algorithm]
    n, deletions, chunks = _live_feed_chunks(
        args, allow_deletions=args.algorithm == "turnstile"
    )
    if deletions and args.algorithm != "turnstile":
        print("error: the feed contains deletions; use --algorithm turnstile",
              file=sys.stderr)
        return 2

    names = [f"copy-{index}" for index in range(args.copies)]
    resumed = False
    if args.resume and args.checkpoint and os.path.exists(args.checkpoint):
        engine = LiveEngine.restore(args.checkpoint)
        resumed = True
        # The checkpoint's own specs win over --copies: resuming must
        # reproduce the interrupted run, not a differently sized one.
        names = engine.estimator_names
        print(f"resumed from {args.checkpoint}: elements={engine.elements} "
              f"m={engine.net_edge_count} copies={len(names)}")
        info = engine.restore_info
        if info and info.get("deltas_applied"):
            print(f"resume applied {info['deltas_applied']} delta "
                  f"checkpoint(s)")
        if info and info.get("fell_back"):
            dropped = ", ".join(info.get("dropped", ()))
            print(f"warning: dropped corrupt delta tip ({dropped}); "
                  f"resuming from the last valid state and re-feeding "
                  f"the remainder", file=sys.stderr)
    else:
        engine = LiveEngine(
            n=n,
            allow_deletions=deletions or args.algorithm == "turnstile",
            batch_size=args.batch_size or 4096,
        )
        for index, name in enumerate(names):
            engine.register_spec(EstimatorSpec(
                name=name,
                factory=factory,
                kwargs=dict(pattern=pattern, trials=args.trials,
                            rng=args.seed + 1 + index, name=name),
            ))

    def report(label: str) -> float:
        # Ask for every surviving estimator: naming a lost copy raises,
        # and under degradation the median over survivors is the answer.
        # With *no* survivors the gather raises a typed error; turn it
        # into the CLI's usage-error exit instead of a traceback.
        try:
            results = engine.estimate()
            median = median_estimate(results)
        except (EngineError, EstimationError) as exc:
            print(f"error: cannot report an estimate: {exc}", file=sys.stderr)
            raise _FullyDegraded() from exc
        suffix = ""
        if engine.degraded:
            suffix = (f" degraded=true surviving={engine.surviving_copies}"
                      f" lost={','.join(engine.lost_estimators)}")
        print(f"{label} elements={engine.elements} m={engine.net_edge_count} "
              f"median={median:.1f}{suffix}")
        return median

    skip = engine.elements if resumed else 0
    since_checkpoint = 0
    since_query = 0
    try:
        return _live_loop(args, engine, chunks, skip,
                          since_checkpoint, since_query, report)
    except _FullyDegraded:
        return 2


def _live_loop(args, engine, chunks, skip, since_checkpoint, since_query,
               report) -> int:
    for u, v, delta in chunks:
        if skip:
            take = min(skip, len(u))
            u, v, delta = u[take:], v[take:], delta[take:]
            skip -= take
            if not len(u):
                continue
        engine.feed((u, v, delta))
        since_checkpoint += len(u)
        since_query += len(u)
        if args.checkpoint_every and since_checkpoint >= args.checkpoint_every:
            written = engine.snapshot(args.checkpoint,
                                      mode=args.checkpoint_mode,
                                      max_deltas=args.max_deltas)
            print(f"checkpoint elements={engine.elements} -> {written}")
            since_checkpoint = 0
        if args.query_every and since_query >= args.query_every:
            report("query")
            since_query = 0

    if args.checkpoint:
        written = engine.snapshot(args.checkpoint,
                                  mode=args.checkpoint_mode,
                                  max_deltas=args.max_deltas)
        print(f"checkpoint elements={engine.elements} -> {written}")
    report("final")
    return 0


def _serve(args: argparse.Namespace) -> int:
    from repro.service import (
        CheckpointPolicy,
        ServiceLimits,
        StreamRegistry,
    )
    from repro.service.server import run_server
    from repro.streams.cache import parse_byte_size

    if args.max_streams < 1:
        print(f"error: --max-streams must be >= 1, got {args.max_streams}",
              file=sys.stderr)
        return 2
    if args.max_deltas < 1:
        print(f"error: --max-deltas must be >= 1, got {args.max_deltas}",
              file=sys.stderr)
        return 2
    scheduled = args.checkpoint_every or args.checkpoint_seconds
    if scheduled and not args.root:
        print("error: --checkpoint-every/--checkpoint-seconds require "
              "--root", file=sys.stderr)
        return 2
    try:
        max_feed_bytes = parse_byte_size(args.max_feed_bytes)
    except ReproError as error:
        print(f"error: --max-feed-bytes: {error}", file=sys.stderr)
        return 2
    limits = ServiceLimits(
        max_streams=args.max_streams,
        max_feed_bytes=max_feed_bytes,
        max_journal_elements=args.max_journal_elements,
    )
    policy = None
    if scheduled:
        policy = CheckpointPolicy(
            every_elements=args.checkpoint_every or None,
            every_seconds=args.checkpoint_seconds or None,
            mode=args.checkpoint_mode,
            max_deltas=args.max_deltas,
        )
    registry = StreamRegistry(root=args.root, limits=limits,
                              default_policy=policy)
    return run_server(registry, host=args.host, port=args.port)


def _worlds(args: argparse.Namespace) -> int:
    from repro.worlds import ESTIMATORS, WorldGrid, run_sweep

    shaping = {
        "--families": args.families,
        "--scenarios": args.scenarios,
        "--estimators": args.estimators,
        "--patterns": args.patterns,
        "--budgets": args.budgets,
        "--copies": args.copies,
        "--epsilon": args.epsilon,
        "--seed": args.seed,
        "--deletion-rate": args.deletion_rate,
        "--window-fraction": args.window_fraction,
        "--backend": args.backend,
    }
    if args.grid is not None:
        given = [flag for flag, value in shaping.items() if value is not None]
        if given:
            print(f"error: --grid carries the full spec; drop {', '.join(given)}",
                  file=sys.stderr)
            return 2
        grid = WorldGrid.from_file(args.grid)
    else:
        scenarios = []
        for kind in args.scenarios or ["insertion", "deletion_heavy"]:
            if kind == "deletion_heavy" and args.deletion_rate is not None:
                scenarios.append({"kind": kind,
                                  "deletion_rate": args.deletion_rate})
            elif kind == "sliding_window" and args.window_fraction is not None:
                scenarios.append({"kind": kind,
                                  "window_fraction": args.window_fraction})
            else:
                scenarios.append(kind)
        grid = WorldGrid(
            families=args.families or ["gnp", "ws", "kronecker", "config"],
            scenarios=scenarios,
            estimators=args.estimators or list(ESTIMATORS),
            patterns=args.patterns or ["triangle"],
            budgets=args.budgets or [200, 800],
            copies=args.copies if args.copies is not None else 3,
            epsilon=args.epsilon if args.epsilon is not None else 0.5,
            seed=args.seed if args.seed is not None else 2022,
            backend=args.backend or "serial",
        )
    cells = grid.cells()
    if args.cells:
        cells = [cell for cell in cells
                 if any(selector in cell.key for selector in args.cells)]
    if args.list_cells:
        for cell in cells:
            print(cell.key)
        print(f"{len(cells)} cell(s)")
        return 0
    document = run_sweep(
        grid,
        out_path=args.out,
        workdir=args.workdir,
        cells=args.cells,
        resume=args.resume,
        progress=print,
    )
    rows = document["rows"]
    violations = sum(1 for row in rows if row["eps_violation"])
    print(f"wrote {len(rows)} cell(s), {violations} eps-violation(s) "
          f"-> {args.out}")
    return 0


def _ers(args: argparse.Namespace) -> int:
    from repro.exact.cliques import count_cliques
    from repro.streaming.ers.counter import count_cliques_stream
    from repro.streams.stream import insertion_stream

    graph = read_edge_list(args.graph)
    lam = args.degeneracy if args.degeneracy else degeneracy(graph)
    lower = args.lower_bound if args.lower_bound else max(1, count_cliques(graph, args.r) // 2)
    stream = insertion_stream(graph, rng=args.seed)
    result = count_cliques_stream(
        stream,
        r=args.r,
        degeneracy_bound=lam,
        lower_bound=lower,
        epsilon=args.epsilon,
        rng=args.seed + 1,
    )
    print(result.summary())
    if args.truth:
        truth = count_cliques(graph, args.r)
        print(f"exact=#{truth} rel_err={result.error_vs(truth):.4f}")
    return 0


def _covers(args: argparse.Namespace) -> int:
    if args.list:
        print("\n".join(_known_pattern_names()))
        return 0
    if not args.pattern:
        print("a pattern name is required unless --list is given", file=sys.stderr)
        return 2
    pattern = parse_pattern(args.pattern)
    decomposition = pattern.decomposition()
    print(f"pattern        {pattern.name}")
    print(f"vertices/edges {pattern.num_vertices}/{pattern.num_edges}")
    print(f"rho (LP)       {pattern.rho()}")
    print(f"beta           {pattern.beta()}")
    print(f"odd cycles     {list(decomposition.cycle_lengths)}")
    print(f"star petals    {list(decomposition.star_petals)}")
    print(f"f_T(H)         {pattern.family_count()}")
    print(f"|Aut(H)|       {pattern.automorphism_count()}")
    return 0


def _experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import resolve_pool, run_all

    try:
        workers = resolve_pool(args.parallel, args.workers)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    run_all(fast=not args.full, seed=args.seed, only=args.only or None,
            markdown=args.markdown, workers=workers)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming subgraph counting (Fichtenberger & Peng, PODS 2022)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p_gen = commands.add_parser("generate", help="write a synthetic graph")
    p_gen.add_argument("family", choices=["gnp", "gnm", "ba", "plc", "ws", "rgg", "grid", "karate"])
    p_gen.add_argument("output", help="edge-list path to write")
    p_gen.add_argument("--n", type=int, default=100, help="vertices (grid: rows)")
    p_gen.add_argument("--m", type=int, default=300, help="edges (gnm) or grid cols")
    p_gen.add_argument("--p", type=float, default=0.1, help="probability / radius")
    p_gen.add_argument("--attach", type=int, default=4, help="BA/plc attachment, ws ring degree")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(handler=_generate)

    p_convert = commands.add_parser(
        "convert", help="SNAP-style edge list -> binary stream (.reb/.npz)"
    )
    p_convert.add_argument("input", help="text edge-list path (SNAP conventions)")
    p_convert.add_argument("output", help=".reb (memmap) or .npz path to write")
    p_convert.add_argument("--no-relabel", action="store_true",
                           help="keep raw vertex ids (default: compact to [0, n))")
    p_convert.add_argument("--keep-duplicates", action="store_true",
                           help="skip first-occurrence dedupe of reversed/repeated "
                                "edges (the stream model requires a simple graph)")
    p_convert.add_argument("--chunk-lines", type=int, default=1 << 16,
                           help="text lines parsed per chunk")
    p_convert.add_argument("--shards", type=int, default=None, metavar="N",
                           help="also write N hash-partitioned shard files "
                                "(base.shard-K-of-N.reb, routed by normalized "
                                "edge) for partitioned ingestion via "
                                "`count --shards N`")
    p_convert.set_defaults(handler=_convert)

    p_exact = commands.add_parser("exact", help="exact #H (ground truth)")
    p_exact.add_argument("graph", help="edge-list path")
    p_exact.add_argument("pattern", help="zoo pattern name")
    p_exact.set_defaults(handler=_exact)

    p_count = commands.add_parser("count", help="streaming #H estimate")
    p_count.add_argument("graph", help="edge-list path")
    p_count.add_argument("pattern", help="zoo pattern name")
    p_count.add_argument(
        "--algorithm",
        choices=["insertion", "turnstile", "two-pass"],
        default="insertion",
    )
    p_count.add_argument("--trials", type=int, default=5000)
    p_count.add_argument("--adaptive", action="store_true",
                         help="no lower bound: AGM start + geometric search (Lemma 21)")
    p_count.add_argument("--epsilon", type=float, default=0.25,
                         help="accuracy target for --adaptive probes")
    p_count.add_argument("--churn", type=int, default=None,
                         help="turnstile churn edges (in-memory graphs only; "
                              "default 50)")
    p_count.add_argument("--seed", type=int, default=0)
    p_count.add_argument("--truth", action="store_true", help="also print exact #H")
    p_count.add_argument("--copies", type=int, default=None,
                         help="median-of-K fused copies (default: 1, or 8 on a "
                              "parallel backend)")
    p_count.add_argument("--backend", choices=["serial", "thread", "process"],
                         default=None,
                         help="execution backend for the fused copies: serial "
                              "(default), thread (daemon threads, zero-copy "
                              "handoff), or process (worker processes fed "
                              "through a shared-memory batch ring); mirror-mode "
                              "estimates are identical across all three")
    p_count.add_argument("--parallel", action="store_true",
                         help="alias for --backend process")
    p_count.add_argument("--workers", type=int, default=None,
                         help="pool size for the thread/process backends "
                              "(default: one per CPU)")
    p_count.add_argument("--batch-size", type=int, default=None,
                         help="updates per dispatched engine batch (fused runs; "
                              "results are invariant to it)")
    p_count.add_argument("--cache", choices=["all", "lru", "none"], default=None,
                         help="batch-cache policy for the stream (default: the "
                              "stream's own — 'all' in memory, 'none' on disk); "
                              "estimates are identical across policies")
    p_count.add_argument("--cache-budget", default=None, metavar="BYTES",
                         help="LRU byte budget with --cache lru (e.g. 64M, 1gb)")
    p_count.add_argument("--mode", choices=["mirror", "shared"], default=None,
                         help="fusion mode for --copies/--parallel runs: mirror "
                         "(per-copy oracles, backend-independent estimates; the "
                         "default) or shared (merged oracles, fastest)")
    p_count.add_argument("--shards", type=int, default=None, metavar="N",
                         help="partitioned ingestion (turnstile only): split "
                              "the stream into N hash-partitioned shards, feed "
                              "each to replica estimators and merge the linear "
                              "sketch states before each pass closes; uses "
                              "materialized shard files (convert --shards) "
                              "when present, on-the-fly views otherwise; "
                              "estimates are bit-identical to the unsharded "
                              "mirror run at any N")
    p_count.set_defaults(handler=_count)

    p_live = commands.add_parser(
        "live", help="open-ended live estimation with checkpoints"
    )
    p_live.add_argument("input", help="converted .reb/.npz stream, edge-list path, "
                                      "or - for stdin 'u v [delta]' lines")
    p_live.add_argument("pattern", help="zoo pattern name")
    p_live.add_argument("--algorithm",
                        choices=["insertion", "turnstile", "two-pass"],
                        default="insertion")
    p_live.add_argument("--copies", type=int, default=4,
                        help="mirror estimator copies (median reported)")
    p_live.add_argument("--trials", type=int, default=200,
                        help="FGP trials per copy (pinned explicitly: live "
                             "engines cannot resolve stream-dependent budgets)")
    p_live.add_argument("--seed", type=int, default=0)
    p_live.add_argument("--n", type=int, default=None,
                        help="vertex universe (required for stdin feeds)")
    p_live.add_argument("--batch-size", type=int, default=None,
                        help="engine dispatch granularity (results invariant)")
    p_live.add_argument("--feed-chunk", type=int, default=4096,
                        help="updates read and fed per chunk")
    p_live.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint file (written at least once at the end)")
    p_live.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="snapshot every N fed updates (requires --checkpoint)")
    p_live.add_argument("--checkpoint-mode", choices=["full", "delta"],
                        default="full",
                        help="periodic snapshot kind: full (everything, the "
                             "default) or delta (journal tail only — "
                             "O(updates-since-base) bytes, rotating to a fresh "
                             "full base every --max-deltas tails)")
    p_live.add_argument("--max-deltas", type=int, default=16, metavar="K",
                        help="delta snapshots per full base before rotation")
    p_live.add_argument("--resume", action="store_true",
                        help="restore --checkpoint if present and continue, "
                             "skipping already-journaled updates; a torn delta "
                             "tip is dropped with a warning and the run "
                             "re-feeds from the last valid point")
    p_live.add_argument("--query-every", type=int, default=0, metavar="N",
                        help="print a running median estimate every N updates")
    p_live.set_defaults(handler=_live)

    p_serve = commands.add_parser(
        "serve", help="multi-tenant live service (JSON line protocol)"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port; 0 (default) binds an ephemeral "
                              "port, printed on startup")
    p_serve.add_argument("--root", default=None, metavar="DIR",
                         help="checkpoint directory (one subdirectory per "
                              "stream); omitted = durability disabled")
    p_serve.add_argument("--max-streams", type=int, default=64,
                         help="admission limit on concurrently open streams")
    p_serve.add_argument("--max-feed-bytes", default="64M", metavar="BYTES",
                         help="in-flight feed payload budget (e.g. 64M, 1gb); "
                              "feeds past it are refused, not buffered")
    p_serve.add_argument("--max-journal-elements", type=int, default=None,
                         metavar="N",
                         help="per-stream journal high watermark; feeds that "
                              "would cross it are refused whole")
    p_serve.add_argument("--checkpoint-every", type=int, default=0,
                         metavar="N",
                         help="default policy: snapshot a stream every N fed "
                              "updates (requires --root)")
    p_serve.add_argument("--checkpoint-seconds", type=float, default=0,
                         metavar="T",
                         help="default policy: snapshot a stream every T "
                              "seconds of feeds (requires --root)")
    p_serve.add_argument("--checkpoint-mode", choices=["full", "delta"],
                         default="delta",
                         help="scheduled snapshot kind (delta = journal "
                              "tails with base rotation, the default)")
    p_serve.add_argument("--max-deltas", type=int, default=16, metavar="K",
                         help="delta snapshots per full base before rotation")
    p_serve.set_defaults(handler=_serve)

    p_worlds = commands.add_parser(
        "worlds", help="scenario sweep: generator grid x estimators -> JSON"
    )
    p_worlds.add_argument("--grid", default=None, metavar="FILE",
                          help="JSON grid spec (mutually exclusive with the "
                               "grid-shaping flags below)")
    p_worlds.add_argument("--out", default="worlds_sweep.json", metavar="PATH",
                          help="sweep JSON destination (rewritten after every "
                               "cell)")
    p_worlds.add_argument("--families", nargs="*", default=None,
                          help="generator families (gnp ba ws plc kronecker "
                               "config); default: gnp ws kronecker config")
    p_worlds.add_argument("--scenarios", nargs="*", default=None,
                          choices=["insertion", "adversarial",
                                   "deletion_heavy", "sliding_window"],
                          help="stream scenarios; default: insertion "
                               "deletion_heavy")
    p_worlds.add_argument("--estimators", nargs="*", default=None,
                          choices=["insertion", "turnstile", "two-pass"],
                          help="estimators to sweep (default: all three)")
    p_worlds.add_argument("--patterns", nargs="*", default=None,
                          help="zoo pattern names (default: triangle)")
    p_worlds.add_argument("--budgets", nargs="*", type=int, default=None,
                          help="space budgets = FGP trials per copy "
                               "(default: 200 800)")
    p_worlds.add_argument("--copies", type=int, default=None,
                          help="median-of-K copies per cell (default: 3)")
    p_worlds.add_argument("--epsilon", type=float, default=None,
                          help="accuracy target scored per cell (default: 0.5)")
    p_worlds.add_argument("--seed", type=int, default=None,
                          help="grid seed; every cell derives from it "
                               "(default: 2022)")
    p_worlds.add_argument("--deletion-rate", type=float, default=None,
                          help="deletion_heavy churn fraction (default: 0.5)")
    p_worlds.add_argument("--window-fraction", type=float, default=None,
                          help="sliding_window size as a fraction of m "
                               "(default: 0.5)")
    p_worlds.add_argument("--backend", choices=["serial", "thread", "process"],
                          default=None,
                          help="engine backend cells run on (default: serial)")
    p_worlds.add_argument("--cells", nargs="*", default=None, metavar="SUBSTR",
                          help="run only cells whose key contains any SUBSTR")
    p_worlds.add_argument("--resume", action="store_true",
                          help="reuse completed cells already in --out")
    p_worlds.add_argument("--list-cells", action="store_true",
                          help="print the (filtered) cell keys and exit")
    p_worlds.add_argument("--workdir", default=None, metavar="DIR",
                          help="keep materialized .reb workloads here "
                               "(default: a temporary directory)")
    p_worlds.set_defaults(handler=_worlds)

    p_ers = commands.add_parser("ers", help="Theorem 2 clique counter")
    p_ers.add_argument("graph", help="edge-list path")
    p_ers.add_argument("--r", type=int, default=3, help="clique order")
    p_ers.add_argument("--degeneracy", type=int, default=0, help="λ bound (0: compute)")
    p_ers.add_argument("--lower-bound", type=float, default=0.0, help="L <= #K_r (0: exact/2)")
    p_ers.add_argument("--epsilon", type=float, default=0.25)
    p_ers.add_argument("--seed", type=int, default=0)
    p_ers.add_argument("--truth", action="store_true", help="also print exact #K_r")
    p_ers.set_defaults(handler=_ers)

    p_covers = commands.add_parser("covers", help="ρ/β/decomposition of a pattern")
    p_covers.add_argument("pattern", nargs="?", help="zoo pattern name")
    p_covers.add_argument("--list", action="store_true", help="list known patterns")
    p_covers.set_defaults(handler=_covers)

    p_exp = commands.add_parser("experiments", help="regenerate E1-E17/A1 tables")
    p_exp.add_argument("--only", nargs="*", help="experiment ids, e.g. e07 e14")
    p_exp.add_argument("--full", action="store_true", help="full (slow) configurations")
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.add_argument("--seed", type=int, default=2022)
    p_exp.add_argument("--parallel", action="store_true",
                       help="run backend-aware experiments (e14) with the "
                       "process backend")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="pool size for --parallel (default: 2)")
    p_exp.set_defaults(handler=_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
