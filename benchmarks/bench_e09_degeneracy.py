"""E9 bench: core decomposition speed + the degeneracy landscape table."""

from conftest import emit_table

from repro.experiments import e09_degeneracy
from repro.graph import generators as gen
from repro.graph.degeneracy import core_decomposition


def test_e09_core_decomposition_speed(benchmark, capsys):
    graph = gen.barabasi_albert(5000, 5, rng=24)

    def decompose():
        return core_decomposition(graph)

    ordering, cores, lam = benchmark(decompose)
    assert len(ordering) == graph.n
    assert lam <= 5

    emit_table(e09_degeneracy.run(fast=True), "e09_degeneracy", capsys)
