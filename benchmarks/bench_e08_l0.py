"""E8 bench: ℓ0-sampler update/sample cycle + the Lemma 7 table."""

from conftest import emit_table

from repro.experiments import e08_l0_sampler
from repro.sketch.l0 import L0Sampler


def test_e08_l0_update_sample_cycle(benchmark, capsys):
    updates = [(item * 37 % 4096, 1) for item in range(300)]
    deletes = [(item * 37 % 4096, -1) for item in range(0, 300, 2)]

    def cycle():
        sampler = L0Sampler(4096, rng=23, repetitions=4)
        for item, delta in updates + deletes:
            sampler.update(item, delta)
        return sampler.sample()

    result = benchmark(cycle)
    assert result is None or 0 <= result < 4096

    emit_table(e08_l0_sampler.run(fast=True), "e08_l0_sampler", capsys)
