"""Bench: the unknown-#H workflow (AGM start + Lemma 21 search).

Times the full multi-probe run; the interesting number is the probe
count (passes/3), which should stay logarithmic in the gap between the
AGM bound and #H.
"""

from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streaming.adaptive import count_subgraphs_unknown
from repro.streams.stream import insertion_stream


def test_adaptive_triangle_counting(benchmark):
    graph = gen.gnp(50, 0.25, rng=81)

    def run_adaptive():
        stream = insertion_stream(graph, rng=82)
        return count_subgraphs_unknown(
            stream, zoo.triangle(), epsilon=0.3, rng=83,
            max_trials_per_probe=20_000,
        )

    result = benchmark.pedantic(run_adaptive, rounds=3, iterations=1)
    assert result.passes % 3 == 0
    assert result.details["probes"] <= 12
