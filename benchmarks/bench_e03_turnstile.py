"""E3 bench: turnstile counter under churn + the Theorem 1 table."""

from conftest import emit_table

from repro.experiments import e03_turnstile
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streams.generators import turnstile_churn_stream


def test_e03_turnstile_throughput(benchmark, capsys):
    graph = gen.karate_club()
    pattern = pattern_zoo.triangle()

    def run_counter():
        stream = turnstile_churn_stream(graph, 30, rng=6)
        return count_subgraphs_turnstile(
            stream, pattern, trials=300, rng=7, sampler_repetitions=4
        )

    result = benchmark(run_counter)
    assert result.passes == 3

    emit_table(e03_turnstile.run(fast=True), "e03_turnstile", capsys)
