"""E7 bench: baseline throughput + the related-work landscape table."""

from conftest import emit_table

from repro.baselines.triest import triest_count
from repro.baselines.cycle_sketch import sketch_count_triangles
from repro.experiments import e07_baselines
from repro.graph import generators as gen
from repro.streams.stream import insertion_stream


def test_e07_triest_throughput(benchmark, capsys):
    graph = gen.barabasi_albert(1500, 5, rng=17)

    def run_triest():
        stream = insertion_stream(graph, rng=18)
        return triest_count(stream, capacity=800, rng=19)

    result = benchmark(run_triest)
    assert result.passes == 1

    emit_table(e07_baselines.run(fast=True), "e07_baselines", capsys)


def test_e07_hom_sketch_throughput(benchmark):
    graph = gen.gnp(80, 0.2, rng=20)

    def run_sketch():
        stream = insertion_stream(graph, rng=21)
        return sketch_count_triangles(stream, sketches=16, rng=22)

    result = benchmark(run_sketch)
    assert result.passes == 1
