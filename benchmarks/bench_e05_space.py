"""E5 bench: sampler batch on G(n,m) + the space-scaling table."""

from conftest import emit_table

from repro.experiments import e05_space_scaling
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import sample_copies_stream
from repro.streams.stream import insertion_stream


def test_e05_gnm_sampler_batch(benchmark, capsys):
    graph = gen.gnm(40, 240, rng=11)
    pattern = pattern_zoo.triangle()

    def run_batch():
        stream = insertion_stream(graph, rng=12)
        return sample_copies_stream(stream, pattern, instances=500, rng=13)

    outputs = benchmark(run_batch)
    assert len(outputs) == 500

    emit_table(e05_space_scaling.run(fast=True), "e05_space_scaling", capsys)
