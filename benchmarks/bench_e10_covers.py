"""E10 bench: cover LP + decomposition DP speed + the zoo table."""

from conftest import emit_table

from repro.experiments import e10_covers
from repro.graph import generators as gen
from repro.patterns.decomposition import decompose
from repro.patterns.edge_cover import fractional_edge_cover_number


def test_e10_cover_lp_speed(benchmark, capsys):
    graph = gen.complete_graph(8)

    def solve():
        return fractional_edge_cover_number(graph)

    rho = benchmark(solve)
    assert rho == 4.0

    emit_table(e10_covers.run(fast=True), "e10_covers", capsys)


def test_e10_decomposition_dp_speed(benchmark):
    graph = gen.complete_graph(9)

    def run_dp():
        return decompose(graph)

    decomposition = benchmark(run_dp)
    assert float(decomposition.cost) == 4.5
