"""E4 bench: one emulated stream pass + the Theorems 9/11 table."""

from conftest import emit_table

from repro.experiments import e04_transform
from repro.graph import generators as gen
from repro.oracle.base import AdjacencyQuery, DegreeQuery, EdgeCountQuery, RandomEdgeQuery
from repro.streams.stream import insertion_stream
from repro.transform.insertion import InsertionStreamOracle


def test_e04_emulated_pass_throughput(benchmark, capsys):
    graph = gen.barabasi_albert(800, 5, rng=8)
    stream = insertion_stream(graph, rng=9)
    batch = (
        [EdgeCountQuery()]
        + [RandomEdgeQuery() for _ in range(50)]
        + [DegreeQuery(v) for v in range(50)]
        + [AdjacencyQuery(v, v + 1) for v in range(50)]
    )

    def one_pass():
        oracle = InsertionStreamOracle(stream, rng=10)
        return oracle.answer_batch(batch)

    answers = benchmark(one_pass)
    assert answers[0] == graph.m

    emit_table(e04_transform.run(fast=True), "e04_transform", capsys)
