"""E11 bench: model-specific counter throughput + the stream-models table."""

from conftest import emit_table

from repro.baselines.order_models import (
    adjacency_list_triangle_count,
    random_order_triangle_count,
)
from repro.experiments import e11_stream_models
from repro.graph import generators as gen
from repro.streams.models import adjacency_list_stream, random_order_stream


def test_e11_random_order_throughput(benchmark, capsys):
    graph = gen.barabasi_albert(1200, 5, rng=61)

    def run_counter():
        stream = random_order_stream(graph, rng=62)
        return random_order_triangle_count(
            stream, prefix_fraction=0.5, sample_probability=0.3, rng=63
        )

    result = benchmark(run_counter)
    assert result.passes == 1

    emit_table(e11_stream_models.run(fast=True), "e11_stream_models", capsys)


def test_e11_adjacency_list_throughput(benchmark):
    graph = gen.barabasi_albert(800, 5, rng=64)
    stream = adjacency_list_stream(graph, rng=65)

    def run_counter():
        stream.reset_pass_count()
        return adjacency_list_triangle_count(stream, wedge_samples=200, rng=66)

    result = benchmark(run_counter)
    assert result.passes == 2
