"""Service load benchmark: streams x feed-rate x query-rate grid.

Drives a real ``repro serve`` stack — :class:`~repro.service.server.
ServerThread` on localhost, :class:`~repro.service.client.
ServiceClient` over TCP — with a grid of tenant counts, feed chunk
sizes (the feed *rate*: updates carried per request), and query mixes
(a mid-stream ``estimate`` every Q feeds).  Every cell measures

* **feed latency** p50/p99 (request send -> response parsed),
* **query latency** p50/p99 (estimate requests, which fork and replay),
* **checkpoint stall** — total seconds the writer spent inside
  scheduled delta snapshots (from the per-stream status counters),
* **peak RSS** of the serving process (``ru_maxrss``; monotone across
  cells, so the grid runs smallest-first).

One honesty assert per cell: a randomly chosen tenant's final median
must equal a standalone :class:`~repro.engine.live.LiveEngine` fed the
same columns directly — the latency numbers can never come from a
service that silently dropped or reordered updates.

Archived as ``benchmarks/results/service_load.json`` (schema-validated
by ``conftest.validate_benchmark_json``).
"""

import json
import os
import resource
import statistics
import sys
import tempfile
import time

from conftest import RESULTS_DIR, emit_json, validate_benchmark_json

from repro.engine import EstimatorSpec, LiveEngine, median_estimate
from repro.engine.parallel import build_triest
from repro.graph import generators as gen
from repro.service import ServerThread, ServiceClient
from repro.streams.stream import insertion_stream

SEED = 13
N_VERTICES = 400
UPDATES_PER_STREAM = 960
COPIES = 3
CAPACITY = 64
CHECKPOINT_EVERY = 256

#: The grid: tenant count x feed chunk (updates/request) x query mix.
STREAM_COUNTS = (2, 8)
FEED_CHUNKS = (32, 128)
QUERY_EVERY = (2, 8)


def _columns(seed):
    graph = gen.barabasi_albert(N_VERTICES, 4, rng=seed)
    stream = insertion_stream(graph, rng=seed + 1)
    u, v, d = stream.columns()
    return u[:UPDATES_PER_STREAM], v[:UPDATES_PER_STREAM], \
        d[:UPDATES_PER_STREAM]


def _reference_median(u, v, d, seed):
    engine = LiveEngine(n=N_VERTICES)
    for index in range(COPIES):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name, factory=build_triest,
            kwargs=dict(capacity=CAPACITY, rng=seed + 1 + index, name=name),
        ))
    engine.feed((u, v, d))
    median = median_estimate(engine.estimate())
    engine.close()
    return median


def _percentiles(samples):
    ordered = sorted(samples)
    if not ordered:
        return 0.0, 0.0
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(round(0.99 * len(ordered))))]
    return p50, p99


def _run_cell(streams, feed_chunk, query_every):
    """One grid cell; returns the measurement row."""
    feed_lat, query_lat = [], []
    root = tempfile.mkdtemp(prefix="repro-bench-service-")
    columns = {f"s{i}": _columns(SEED + 10 * i) for i in range(streams)}
    with ServerThread(root=root) as server:
        with ServiceClient(server.host, server.port) as client:
            for index, name in enumerate(columns):
                client.open(name, config={
                    "n": N_VERTICES, "estimator": "triest",
                    "copies": COPIES, "capacity": CAPACITY,
                    "seed": SEED + 10 * index,
                    "checkpoint": {"every_elements": CHECKPOINT_EVERY},
                })
            offsets = {name: 0 for name in columns}
            feeds_done = {name: 0 for name in columns}
            live = set(columns)
            while live:
                for name in sorted(live):
                    u, v, d = columns[name]
                    start = offsets[name]
                    if start >= len(u):
                        live.discard(name)
                        continue
                    stop = min(start + feed_chunk, len(u))
                    begin = time.perf_counter()
                    client.feed(name, u[start:stop], v[start:stop],
                                d[start:stop])
                    feed_lat.append(time.perf_counter() - begin)
                    offsets[name] = stop
                    feeds_done[name] += 1
                    if feeds_done[name] % query_every == 0:
                        begin = time.perf_counter()
                        client.estimate(name)
                        query_lat.append(time.perf_counter() - begin)
            # Honesty assert: the first tenant's median equals a
            # standalone engine fed the same columns directly.
            probe = next(iter(columns))
            u, v, d = columns[probe]
            wire_median = client.estimate(probe)["median"]
            expected = _reference_median(u, v, d, SEED)
            assert wire_median == expected, (
                f"service median {wire_median} != direct {expected}"
            )
            status = client.status()
            stall = sum(doc["checkpoint_stall_s"]
                        for doc in status["streams"].values())
            checkpoints = sum(doc["checkpoints_written"]
                              for doc in status["streams"].values())
            for name in columns:
                client.close_stream(name, checkpoint=False)
    feed_p50, feed_p99 = _percentiles(feed_lat)
    query_p50, query_p99 = _percentiles(query_lat)
    return {
        "streams": streams,
        "feed_chunk": feed_chunk,
        "query_every": query_every,
        "feeds": len(feed_lat),
        "queries": len(query_lat),
        "feed_p50_ms": round(feed_p50 * 1e3, 4),
        "feed_p99_ms": round(feed_p99 * 1e3, 4),
        "query_p50_ms": round(query_p50 * 1e3, 4),
        "query_p99_ms": round(query_p99 * 1e3, 4),
        "checkpoints_written": checkpoints,
        "checkpoint_stall_s": round(stall, 4),
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss * 1024,
    }


def run_grid():
    rows = []
    for streams in STREAM_COUNTS:
        for feed_chunk in FEED_CHUNKS:
            for query_every in QUERY_EVERY:
                row = _run_cell(streams, feed_chunk, query_every)
                rows.append(row)
                print(f"streams={row['streams']} "
                      f"chunk={row['feed_chunk']} "
                      f"q_every={row['query_every']} "
                      f"feed p50/p99={row['feed_p50_ms']}/"
                      f"{row['feed_p99_ms']}ms "
                      f"query p50/p99={row['query_p50_ms']}/"
                      f"{row['query_p99_ms']}ms "
                      f"stall={row['checkpoint_stall_s']}s", flush=True)
    path = emit_json(
        "service_load",
        params={
            "updates_per_stream": UPDATES_PER_STREAM,
            "n": N_VERTICES,
            "copies": COPIES,
            "capacity": CAPACITY,
            "checkpoint_every": CHECKPOINT_EVERY,
            "stream_counts": list(STREAM_COUNTS),
            "feed_chunks": list(FEED_CHUNKS),
            "query_every": list(QUERY_EVERY),
            "seed": SEED,
        },
        rows=rows,
    )
    with open(path, encoding="utf-8") as handle:
        validate_benchmark_json(json.load(handle))
    return path, rows


def test_service_load_grid(capsys):
    with capsys.disabled():
        path, rows = run_grid()
    assert len(rows) == len(STREAM_COUNTS) * len(FEED_CHUNKS) * \
        len(QUERY_EVERY)
    assert os.path.basename(path) == "service_load.json"
    assert any(row["streams"] >= 8 for row in rows)
    assert all(row["feed_p99_ms"] >= row["feed_p50_ms"] >= 0 for row in rows)


if __name__ == "__main__":
    sys.exit(0 if run_grid() else 1)
