#!/usr/bin/env python3
"""CI worlds-smoke: a 2x2 mini-grid sweep with hard assertions.

Runs a 2-family x 2-estimator world sweep (new streaming Kronecker +
Erdős–Rényi families, insertion scenario, one generous space budget)
end to end through the out-of-core driver, then asserts

* the emitted JSON validates against the shared benchmark schema
  (``benchmarks/conftest.validate_benchmark_json``) *and* the stricter
  per-row sweep schema;
* **no cell reports an ε-violation** at these smoke sizes (seeded
  budgets are generous, so a violation means estimator drift, not
  noise);
* every cell really ran out of core: metered ``peak_resident_bytes``
  is positive and within the grid's LRU byte budget;
* ``resume`` reuses every completed cell without re-running.

Fails on errors, never on timings.

Run: ``PYTHONPATH=src python benchmarks/worlds_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from conftest import validate_benchmark_json  # noqa: E402

from repro.streams.cache import parse_byte_size  # noqa: E402
from repro.worlds import WorldGrid, run_sweep, validate_sweep_document  # noqa: E402

CACHE_BUDGET = "256K"


def smoke_grid() -> WorldGrid:
    return WorldGrid(
        families=[
            {"family": "gnp", "n": 40, "p": 0.25},
            {"family": "kronecker", "power": 6, "edges": 320},
        ],
        scenarios=["insertion"],
        estimators=["insertion", "turnstile"],
        patterns=["triangle"],
        budgets=[320],
        copies=5,
        epsilon=0.7,
        seed=20220704,
        cache=f"lru:{CACHE_BUDGET}",
    )


def main() -> int:
    grid = smoke_grid()
    expected_cells = len(grid.cells())
    with tempfile.TemporaryDirectory(prefix="repro-worlds-smoke-") as tmp:
        out_path = os.path.join(tmp, "worlds_smoke.json")
        document = run_sweep(grid, out_path=out_path, progress=print)

        with open(out_path, "r", encoding="utf-8") as handle:
            archived = json.load(handle)
        try:
            validate_benchmark_json(archived)
        except ValueError as error:
            print(f"worlds-smoke: shared benchmark schema failed: {error}")
            return 1
        try:
            validate_sweep_document(archived)
        except ValueError as error:
            print(f"worlds-smoke: sweep schema failed: {error}")
            return 1

        rows = archived["rows"]
        if len(rows) != expected_cells:
            print(f"worlds-smoke: expected {expected_cells} cells, "
                  f"got {len(rows)}")
            return 1

        budget_bytes = parse_byte_size(CACHE_BUDGET)
        failures = 0
        for row in rows:
            if row["eps_violation"]:
                print(f"worlds-smoke: eps-violation in {row['cell']} "
                      f"(rel_err={row['rel_err']:.3f} > "
                      f"epsilon={row['epsilon']})")
                failures += 1
            if not 0 < row["peak_resident_bytes"] <= budget_bytes:
                print(f"worlds-smoke: cache metering off in {row['cell']} "
                      f"(peak={row['peak_resident_bytes']}, "
                      f"budget={budget_bytes})")
                failures += 1
        if failures:
            return 1

        # Resume must reuse every completed cell, bit for bit.
        reused = run_sweep(grid, out_path=out_path, resume=True)
        if reused["rows"] != document["rows"]:
            print("worlds-smoke: resumed sweep diverged from the original")
            return 1

    print(f"worlds-smoke: ok ({len(rows)} cells, 0 eps-violations, "
          f"peak <= {budget_bytes:,} B, resume bit-identical)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
