"""E6 bench: one ERS streaming run + the Theorem 2 table."""

from conftest import emit_table

from repro.experiments import e06_ers
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.exact.cliques import count_cliques
from repro.streaming.ers.counter import count_cliques_stream
from repro.streaming.ers.params import ErsParameters
from repro.streams.stream import insertion_stream


def test_e06_ers_run(benchmark, capsys):
    graph = gen.barabasi_albert(150, 3, rng=14)
    lam = degeneracy(graph)
    truth = max(1, count_cliques(graph, 3))
    params = ErsParameters(r=3, degeneracy_bound=lam, outer_repetitions=3, sample_cap=1500)

    def run_counter():
        stream = insertion_stream(graph, rng=15)
        return count_cliques_stream(
            stream, r=3, degeneracy_bound=lam, lower_bound=truth,
            params=params, rng=16,
        )

    result = benchmark(run_counter)
    assert result.passes <= 15

    emit_table(e06_ers.run(fast=True), "e06_ers", capsys)
