"""E12 bench: 2-pass counter throughput + the 2-vs-3-pass table."""

from conftest import emit_table

from repro.experiments import e12_two_pass
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streaming.two_pass import count_subgraphs_two_pass
from repro.streams.stream import insertion_stream


def test_e12_two_pass_throughput(benchmark, capsys):
    graph = gen.gnp(60, 0.25, rng=71)

    def run_counter():
        stream = insertion_stream(graph, rng=72)
        return count_subgraphs_two_pass(stream, zoo.path(3), trials=2000, rng=73)

    result = benchmark(run_counter)
    assert result.passes == 2

    emit_table(e12_two_pass.run(fast=True), "e12_two_pass", capsys)
