"""Scatter/merge smoke check for CI (no pytest, no benchmarks).

Exercises the sharded ingestion layer (:mod:`repro.engine.sharded` +
the hash-partitioned ``.reb`` shard files of
:mod:`repro.streams.datasets`) end to end on a small turnstile
workload and fails loudly (exit 1) if any leg of the merge contract
breaks:

* **bit-equality** — sharded estimates (in-memory shard views at two
  shard counts, disk shard files, and the process backend) all equal
  the unsharded mirror-mode run, per copy;
* **typed refusal** — the insertion-only path raises
  :class:`~repro.errors.MergeError` at the merge barrier instead of
  returning a silently wrong estimate;
* **shared-memory hygiene** — no ``repro_shm_*`` segment survives in
  ``/dev/shm`` after the process-backend sharded run;
* **schema** — the archived ``benchmarks/results/sharded_ingest.json``
  scaling table validates against the shared benchmark schema and
  carries the expected scaling columns.

Run from the repository root::

    PYTHONPATH=src python benchmarks/merge_smoke.py
"""

import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from conftest import validate_benchmark_json  # noqa: E402

from repro.engine import count_subgraphs_turnstile_fused  # noqa: E402
from repro.engine.parallel import leaked_shm_segments  # noqa: E402
from repro.engine.sharded import count_subgraphs_turnstile_sharded  # noqa: E402
from repro.errors import MergeError  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.patterns import pattern as zoo  # noqa: E402
from repro.streaming.three_pass import count_subgraphs_insertion_only  # noqa: E402
from repro.streams.datasets import (  # noqa: E402
    DiskEdgeStream,
    open_stream_shards,
    stream_shard_views,
    write_binary_updates,
    write_stream_shards,
)
from repro.streams.generators import turnstile_churn_stream  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402

FAILURES = []


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"[merge-smoke] {label}: {status}{(' — ' + detail) if detail else ''}")
    if not condition:
        FAILURES.append(label)


def main():
    cpus = os.cpu_count() or 1
    print(f"[merge-smoke] cpus={cpus}")
    # Triangle-dense graph so the bit-equality checks compare nonzero
    # estimates, not a vacuous 0.0 == 0.0.
    graph = gen.power_law_cluster(300, 5, 0.8, 11)
    pattern = zoo.triangle()
    stream = turnstile_churn_stream(graph, churn_edges=200, rng=12)
    baseline_segments = set(leaked_shm_segments())
    check(
        "clean /dev/shm before the run",
        not baseline_segments,
        ", ".join(sorted(baseline_segments)),
    )

    def sharded(shard_streams, backend="serial"):
        return count_subgraphs_turnstile_sharded(
            shard_streams, pattern, copies=4, trials=48, rng=7,
            backend=backend, batch_size=128,
        )

    reference = count_subgraphs_turnstile_fused(
        stream, pattern, copies=4, trials=48, rng=7, mode="mirror",
    )
    check("reference estimate is nonzero", reference.estimate > 0,
          f"estimate={reference.estimate}")

    for shards in (2, 3):
        result = sharded(stream_shard_views(stream, shards))
        check(
            f"{shards} shard views match unsharded bit-for-bit",
            result.estimates == reference.estimates,
            f"{result.estimates} vs {reference.estimates}",
        )

    with tempfile.TemporaryDirectory() as tmp:
        u, v, delta = stream.columns()
        path = write_binary_updates(
            os.path.join(tmp, "smoke.reb"), stream.n, u, v, delta,
            allow_deletions=True,
        )
        write_stream_shards(path, 3)
        disk_shards = open_stream_shards(path, 3, cache="lru:64k")
        result = sharded(disk_shards)
        check(
            "3 disk shard files match unsharded bit-for-bit",
            result.estimates == reference.estimates,
            f"{result.estimates} vs {reference.estimates}",
        )
        peak = max(s.cache_policy.peak_resident_bytes for s in disk_shards)
        check("shard LRU cache metered a bounded peak",
              0 < peak <= 64 * 1024, f"peak={peak}")

        result = sharded(open_stream_shards(path, 3), backend="process")
        check(
            "process-backend sharded run matches unsharded bit-for-bit",
            result.estimates == reference.estimates,
            f"{result.estimates} vs {reference.estimates}",
        )
    leaked = set(leaked_shm_segments()) - baseline_segments
    check("no leaked shm segments after the sharded process run",
          not leaked, ", ".join(sorted(leaked)))

    # The insertion-only oracle answers from reservoir samplers whose
    # draws depend on the global stream order — merging per-shard
    # states must refuse with the typed error, never estimate.
    insertion = insertion_stream(graph, rng=12)
    views = stream_shard_views(insertion, 2)
    try:
        from repro.engine import EstimatorSpec, fgp_insertion_estimator
        from repro.engine.sharded import ShardedRunner

        runner = ShardedRunner(views)
        runner.register(EstimatorSpec(
            "fgp", fgp_insertion_estimator,
            dict(pattern=pattern, trials=64, rng=5, name="fgp"),
        ))
        runner.run()
    except MergeError as error:
        check("insertion path refuses with MergeError", True, str(error)[:80])
    else:
        check("insertion path refuses with MergeError", False)
    # ... and the serial insertion counter itself still works.
    exact = count_subgraphs_insertion_only(
        insertion_stream(graph, rng=12), pattern, trials=64, rng=5
    )
    check("insertion counter unaffected", exact.passes == 3)

    # Schema-validate the archived scaling table.
    results_path = os.path.join(_HERE, "results", "sharded_ingest.json")
    try:
        with open(results_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        validate_benchmark_json(document)
        rows = document["rows"]
        columns = {"shards", "seconds", "updates_per_sec",
                   "peak_resident_bytes", "merge_seconds", "estimate"}
        check(
            "sharded_ingest.json validates against the benchmark schema",
            document["benchmark"] == "sharded_ingest"
            and len(rows) >= 2
            and all(columns <= set(row) for row in rows),
        )
    except (OSError, ValueError, KeyError) as error:
        check("sharded_ingest.json validates against the benchmark schema",
              False, repr(error))

    if FAILURES:
        print(f"[merge-smoke] FAILED: {', '.join(FAILURES)}")
        return 1
    print("[merge-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
