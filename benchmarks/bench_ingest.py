"""Ingestion benches: disk-backed streams and batch-cache policies.

What the out-of-core layer costs and buys: decode throughput of a
binary memmap stream under each cache policy, the text→binary
conversion rate, and a fused multi-pass run comparing in-memory
against disk-backed input.  The archived ``ingest_policies`` JSON is
the machine-readable ingestion table the CI perf-smoke job validates.
"""

import os
import tempfile
import time

import numpy as np

from conftest import emit_json, emit_table

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.datasets import (
    DiskEdgeStream,
    convert_edge_list,
    write_binary_updates,
)
from repro.streams.stream import insertion_stream


def _disk_stream(tmp, graph, seed=3, cache="none"):
    u, v, _ = insertion_stream(graph, rng=seed).columns()
    path = write_binary_updates(os.path.join(tmp, "bench.reb"), graph.n, u, v)
    return DiskEdgeStream(path, cache=cache)


def test_ingest_decode_throughput_by_policy(benchmark, capsys):
    graph = gen.barabasi_albert(20_000, 6, rng=7)
    passes = 4

    with tempfile.TemporaryDirectory() as tmp:
        stream = _disk_stream(tmp, graph)

        def run_passes():
            total = 0
            for _ in range(passes):
                total += sum(len(batch) for batch in stream.batches(4096))
            return total

        total = benchmark(run_passes)
        assert total == passes * stream.length

        rows = []
        for cache in ("none", "lru:1M", "all"):
            stream.set_cache_policy(cache)
            start = time.perf_counter()
            for _ in range(passes):
                consumed = sum(len(batch) for batch in stream.batches(4096))
            elapsed = time.perf_counter() - start
            policy = stream.cache_policy
            rows.append(
                {
                    "cache": cache,
                    "elements_per_sec": passes * consumed / elapsed,
                    "peak_resident_bytes": policy.peak_resident_bytes,
                    "hits": policy.hits,
                    "misses": policy.misses,
                }
            )

    table = Table(
        title=f"Disk decode throughput by cache policy (m={graph.m}, {passes} passes)",
        columns=["cache", "elements/s", "peak bytes", "hits", "misses"],
    )
    for row in rows:
        table.add_row(
            row["cache"],
            f"{row['elements_per_sec']:,.0f}",
            f"{row['peak_resident_bytes']:,}",
            row["hits"],
            row["misses"],
        )
    emit_table(table, "ingest_policies", capsys, json_twin=False)
    emit_json(
        "ingest_policies",
        params={"n": graph.n, "m": graph.m, "passes": passes, "batch_size": 4096},
        rows=rows,
    )


def test_ingest_conversion_rate(benchmark, capsys):
    graph = gen.gnm(5_000, 40_000, rng=9)
    lines = [f"{u} {v}\n" for u, v in graph.edges()]
    text = "# bench edge list\n" + "".join(lines)

    with tempfile.TemporaryDirectory() as tmp:
        source = os.path.join(tmp, "edges.txt")
        with open(source, "w", encoding="utf-8") as handle:
            handle.write(text)

        def convert():
            return convert_edge_list(source, os.path.join(tmp, "edges.reb"))

        stream = benchmark(convert)
        assert stream.net_edge_count == graph.m


def test_ingest_fused_disk_vs_memory(benchmark, capsys):
    graph = gen.barabasi_albert(3_000, 5, rng=11)
    copies, trials = 8, 400
    pattern = zoo.triangle()

    def run(stream):
        return count_subgraphs_insertion_only_fused(
            stream, pattern, copies=copies, trials=trials, rng=13,
            mode=FusionMode.MIRROR,
        )

    with tempfile.TemporaryDirectory() as tmp:
        rows = []
        memory = insertion_stream(graph, rng=12)
        start = time.perf_counter()
        reference = run(memory)
        rows.append(
            {"source": "memory", "seconds": time.perf_counter() - start,
             "estimate": reference.estimate}
        )
        for cache in ("none", "lru:256k"):
            u, v, _ = insertion_stream(graph, rng=12).columns()
            path = write_binary_updates(
                os.path.join(tmp, f"{cache.split(':')[0]}.reb"), graph.n, u, v
            )
            disk = DiskEdgeStream(path, cache=cache)
            start = time.perf_counter()
            result = run(disk)
            rows.append(
                {"source": f"disk[{cache}]", "seconds": time.perf_counter() - start,
                 "estimate": result.estimate}
            )
            assert result.estimates == reference.estimates

        def rerun_disk():
            return run(DiskEdgeStream(path, cache="none"))

        benchmark(rerun_disk)

    table = Table(
        title=f"Fused 3-pass K={copies}: memory vs disk (m={graph.m}, mirror)",
        columns=["source", "seconds", "estimate"],
    )
    for row in rows:
        table.add_row(row["source"], f"{row['seconds']:.3f}", f"{row['estimate']:.1f}")
    emit_table(table, "ingest_fused", capsys, json_twin=False)
    emit_json(
        "ingest_fused",
        params={"n": graph.n, "m": graph.m, "copies": copies,
                "trials_per_copy": trials, "pattern": pattern.name},
        rows=rows,
    )
