"""Service smoke check for CI (no pytest).

Boots a **real** ``repro serve`` process on an ephemeral localhost
port, drives three tenant streams over the wire with interleaved feeds
and queries, then runs the kill/reopen drill — and fails loudly
(exit 1) if any leg of the service contract breaks:

* **tenant isolation** — each tenant's wire median equals a standalone
  :class:`~repro.engine.live.LiveEngine` fed the same columns
  directly, despite the interleaving;
* **kill → restore-on-open** — a tenant dropped without its final
  checkpoint reopens from the last scheduled snapshot, and re-feeding
  the tail reconverges to the exact uninterrupted estimates;
* **typed refusals** — feeding an unopened stream and opening past
  ``max-streams`` answer with typed errors, and the connection (and
  every other tenant) survives;
* **schema** — the archived ``results/service_load.json`` (the
  ``bench_service.py`` artifact) passes the shared benchmark schema
  and carries the p50/p99 latency columns for the 8-stream grid.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from conftest import validate_benchmark_json  # noqa: E402

from repro.engine import EstimatorSpec, LiveEngine, median_estimate  # noqa: E402
from repro.engine.parallel import build_triest  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402

SEED = int(os.environ.get("REPRO_SERVICE_SEED", "0"))
N_VERTICES = 300
COPIES = 3
CAPACITY = 64
CHECKPOINT_EVERY = 150
CHUNK = 48
FAILURES = []


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"[service-smoke] {label}: {status}"
          f"{(' — ' + detail) if detail else ''}", flush=True)
    if not condition:
        FAILURES.append(label)


def _columns(seed):
    graph = gen.barabasi_albert(N_VERTICES, 4, rng=seed)
    u, v, d = insertion_stream(graph, rng=seed + 1).columns()
    return u[:720], v[:720], d[:720]


def _direct_median(u, v, d, seed):
    engine = LiveEngine(n=N_VERTICES)
    for index in range(COPIES):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name, factory=build_triest,
            kwargs=dict(capacity=CAPACITY, rng=seed + 1 + index, name=name),
        ))
    engine.feed((u, v, d))
    median = median_estimate(engine.estimate())
    engine.close()
    return median


def _boot_server(root):
    """Start ``repro serve`` as a subprocess; returns (proc, host, port)."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--root", root, "--max-streams", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"serving on ([\d.]+):(\d+)", line)
    if not match:
        proc.terminate()
        raise RuntimeError(f"repro serve did not announce a port: {line!r}")
    return proc, match.group(1), int(match.group(2))


def main():
    print(f"[service-smoke] seed={SEED} "
          f"(rerun with REPRO_SERVICE_SEED={SEED})", flush=True)
    root = tempfile.mkdtemp(prefix="repro-service-smoke-")
    tenants = {f"tenant-{i}": _columns(SEED + 50 * i) for i in range(3)}
    proc, host, port = _boot_server(root)
    try:
        with ServiceClient(host, port) as client:
            for index, name in enumerate(tenants):
                client.open(name, config={
                    "n": N_VERTICES, "estimator": "triest",
                    "copies": COPIES, "capacity": CAPACITY,
                    "seed": SEED + 50 * index,
                    "checkpoint": {"every_elements": CHECKPOINT_EVERY},
                })
            # Interleaved feeds with periodic queries.
            offsets = {name: 0 for name in tenants}
            done = False
            while not done:
                done = True
                for name, (u, v, d) in tenants.items():
                    start = offsets[name]
                    if start >= len(u):
                        continue
                    done = False
                    stop = min(start + CHUNK, len(u))
                    client.feed(name, u[start:stop], v[start:stop],
                                d[start:stop])
                    offsets[name] = stop
                    if (stop // CHUNK) % 3 == 0:
                        client.estimate(name)
            for index, (name, (u, v, d)) in enumerate(tenants.items()):
                wire = client.estimate(name)["median"]
                direct = _direct_median(u, v, d, SEED + 50 * index)
                check(f"{name} wire median equals direct engine",
                      wire == direct, f"wire={wire} direct={direct}")

            # Typed refusals, non-destructive.
            try:
                client.feed("ghost", [1], [2])
                check("feeding an unopened stream refuses", False,
                      "no error raised")
            except ServiceError as error:
                check("feeding an unopened stream refuses",
                      "not open" in str(error))
            try:
                client.open("tenant-overflow", config={
                    "n": 8, "estimator": "triest", "copies": 1})
                client.open("tenant-overflow-2", config={
                    "n": 8, "estimator": "triest", "copies": 1})
                check("max-streams admission refuses", False,
                      "no error raised")
            except ServiceError as error:
                check("max-streams admission refuses",
                      "max_streams" in str(error))
            check("refusals left every tenant standing",
                  client.status()["open_streams"] == 4)
            client.close_stream("tenant-overflow", checkpoint=False)

            # Kill/reopen drill on tenant-0: drop without the final
            # checkpoint, reopen from the last scheduled snapshot,
            # re-feed the tail, reconverge exactly.
            name = "tenant-0"
            u, v, d = tenants[name]
            client.kill(name)
            reopened = client.open(name)
            resumed_at = reopened["elements"]
            # CHECKPOINT_EVERY is deliberately misaligned with CHUNK,
            # so the last snapshot sits strictly before the crash point
            # and the reopen has a real tail to re-feed.
            check("kill -> reopen restores mid-stream",
                  reopened["restored"] is True and 0 < resumed_at < len(u),
                  f"resumed_at={resumed_at} of {len(u)}")
            client.feed(name, u[resumed_at:], v[resumed_at:], d[resumed_at:])
            wire = client.estimate(name)["median"]
            direct = _direct_median(u, v, d, SEED)
            check("post-restore median equals uninterrupted",
                  wire == direct, f"wire={wire} direct={direct}")
            for name in list(tenants):
                client.close_stream(name, checkpoint=False)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    # Schema-check the archived load-benchmark artifact.
    results = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results", "service_load.json")
    if os.path.exists(results):
        with open(results, encoding="utf-8") as handle:
            document = json.load(handle)
        try:
            validate_benchmark_json(document)
            ok = True
        except ValueError as error:
            ok = False
            print(f"[service-smoke] schema error: {error}", flush=True)
        required = {"streams", "feed_p50_ms", "feed_p99_ms", "query_p50_ms",
                    "query_p99_ms", "checkpoint_stall_s", "peak_rss_bytes"}
        rows_ok = all(required <= set(row) for row in document["rows"])
        grid_ok = any(row["streams"] >= 8 for row in document["rows"])
        check("service_load.json passes the benchmark schema",
              ok and rows_ok and grid_ok)
    else:
        check("service_load.json exists", False, results)

    if FAILURES:
        print(f"[service-smoke] FAILED ({len(FAILURES)}): "
              f"{', '.join(FAILURES)}")
        print(f"[service-smoke] reproduce with: PYTHONPATH=src "
              f"REPRO_SERVICE_SEED={SEED} python benchmarks/service_smoke.py")
        return 1
    print("[service-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
