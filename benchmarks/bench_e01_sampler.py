"""E1 bench: FGP sampler attempts/second + the Lemma 15/16 table."""

from conftest import emit_table

from repro.experiments import e01_sampler_probability
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import sample_copies_stream
from repro.streams.stream import insertion_stream


def test_e01_sampler_throughput(benchmark, capsys):
    graph = gen.karate_club()
    pattern = pattern_zoo.triangle()

    def run_batch():
        stream = insertion_stream(graph, rng=1)
        return sample_copies_stream(stream, pattern, instances=300, rng=2)

    outputs = benchmark(run_batch)
    assert len(outputs) == 300

    emit_table(e01_sampler_probability.run(fast=True), "e01_sampler_probability", capsys)
