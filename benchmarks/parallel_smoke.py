"""Multi-core parallel smoke check for CI (no pytest, no benchmarks).

Exercises the three execution backends end to end on a small fused
workload and fails loudly (exit 1) if any leg of the parallel
contract breaks:

* **bit-equality** — mirror-mode estimates on ``thread`` and
  ``process`` pools equal the serial backend's, per copy;
* **shared-memory hygiene** — no ``repro_shm_*`` segment survives in
  ``/dev/shm`` after a graceful run *or* after a worker error
  (the terminate path must unlink the ring too);
* **error propagation** — a worker that dies mid-pass surfaces an
  :class:`~repro.errors.EngineError` instead of hanging the driver.

Run from the repository root::

    PYTHONPATH=src python benchmarks/parallel_smoke.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.engine import (  # noqa: E402
    EstimatorSpec,
    FusionMode,
    StreamEngine,
    count_subgraphs_insertion_only_fused,
)
from repro.engine.parallel import leaked_shm_segments  # noqa: E402
from repro.errors import EngineError  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.patterns import pattern as zoo  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402

FAILURES = []


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"[parallel-smoke] {label}: {status}{(' — ' + detail) if detail else ''}")
    if not condition:
        FAILURES.append(label)


def _exploding_factory(stream, **kwargs):
    raise RuntimeError("intentional failure for the smoke error path")


def main():
    cpus = os.cpu_count() or 1
    print(f"[parallel-smoke] cpus={cpus}")
    # Power-law-cluster graphs are triangle-dense: the per-trial hit
    # rate is high enough that the estimates compared below are
    # nonzero, so the bit-equality checks are not vacuous.
    graph = gen.power_law_cluster(300, 5, 0.8, 11)
    pattern = zoo.triangle()
    baseline_segments = set(leaked_shm_segments())
    check(
        "clean /dev/shm before the run",
        not baseline_segments,
        ", ".join(sorted(baseline_segments)),
    )

    def fused(backend, workers=None):
        return count_subgraphs_insertion_only_fused(
            insertion_stream(graph, rng=12),
            pattern,
            copies=4,
            trials=250,
            rng=7,
            mode=FusionMode.MIRROR,
            backend=backend,
            workers=workers,
            batch_size=128,  # small batches: many trips through the shm ring
        )

    serial = fused("serial")
    for backend in ("thread", "process"):
        result = fused(backend, workers=2)
        check(
            f"{backend} backend matches serial bit-for-bit",
            result.estimates == serial.estimates,
            f"{result.estimates} vs {serial.estimates}",
        )

    leaked = set(leaked_shm_segments()) - baseline_segments
    check("no leaked shm segments after graceful runs", not leaked,
          ", ".join(sorted(leaked)))

    # Error path: the worker dies during startup; the driver must
    # propagate the failure and still unlink every ring segment.
    engine = StreamEngine(
        insertion_stream(graph, rng=12), batch_size=32, backend="process", workers=1
    )
    engine.register_spec(EstimatorSpec("boom", _exploding_factory, {}))
    try:
        engine.run()
    except EngineError:
        check("worker error propagates as EngineError", True)
    else:
        check("worker error propagates as EngineError", False)
    leaked = set(leaked_shm_segments()) - baseline_segments
    check("no leaked shm segments after the error path", not leaked,
          ", ".join(sorted(leaked)))

    if FAILURES:
        print(f"[parallel-smoke] FAILED: {', '.join(FAILURES)}")
        return 1
    print("[parallel-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
