"""Benchmark-suite helpers.

Each ``bench_eXX`` module (a) times a representative core operation
with pytest-benchmark and (b) regenerates its experiment table, prints
it to the live terminal, and archives it under ``benchmarks/results/``
so ``pytest benchmarks/ --benchmark-only`` reproduces every table of
EXPERIMENTS.md in one command.

Every archived table now has a machine-readable twin:
``emit_table`` writes ``<name>.txt`` (the rendered table) *and*
``<name>.json`` (git SHA, title, columns, rows), and benchmarks with
richer payloads (parameters, edges/sec measurements) call
``emit_json`` directly — that is what makes the perf trajectory
diffable across PRs instead of locked up in monospace art.
"""

import json
import os
import subprocess
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Keys every archived benchmark JSON document must carry.
JSON_SCHEMA_KEYS = ("benchmark", "git_sha", "created_unix", "params", "rows")


def git_sha() -> str:
    """The repository's HEAD SHA, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def emit_json(name, params, rows, extra=None) -> str:
    """Archive a machine-readable benchmark result; returns the path.

    *params* describes the workload (sizes, seeds, flags), *rows* is a
    list of flat dicts (one measurement each), *extra* merges into the
    top level.  The document always carries the keys of
    :data:`JSON_SCHEMA_KEYS` so the CI perf-smoke job can validate any
    archived result uniformly.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "benchmark": name,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "params": dict(params),
        "rows": list(rows),
    }
    if extra:
        document.update(extra)
    validate_benchmark_json(document)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        # default=str keeps the archive robust to stray non-JSON cell
        # types (numpy scalars, patterns) without crashing a benchmark.
        json.dump(document, handle, indent=2, default=str)
        handle.write("\n")
    return path


def validate_benchmark_json(document) -> None:
    """Schema check for archived benchmark JSON (raises ValueError)."""
    if not isinstance(document, dict):
        raise ValueError("benchmark JSON must be an object")
    for key in JSON_SCHEMA_KEYS:
        if key not in document:
            raise ValueError(f"benchmark JSON missing required key {key!r}")
    if not isinstance(document["benchmark"], str) or not document["benchmark"]:
        raise ValueError("'benchmark' must be a non-empty string")
    if not isinstance(document["git_sha"], str) or not document["git_sha"]:
        raise ValueError("'git_sha' must be a non-empty string")
    if not isinstance(document["created_unix"], (int, float)):
        raise ValueError("'created_unix' must be a number")
    if not isinstance(document["params"], dict):
        raise ValueError("'params' must be an object")
    if not isinstance(document["rows"], list) or not all(
        isinstance(row, dict) for row in document["rows"]
    ):
        raise ValueError("'rows' must be a list of objects")


def emit_table(table, name, capsys, json_twin: bool = True) -> None:
    """Print *table* to the real terminal and archive it.

    Writes ``<name>.txt`` and, with *json_twin* (the default), a
    generic ``<name>.json`` built from the table cells.  Benchmarks
    that archive a richer document of their own under the same name
    (numeric rows, workload params) must pass ``json_twin=False`` so
    the two writers cannot race on call order.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.render() + "\n")
    if json_twin:
        emit_json(
            name,
            params={"title": table.title},
            rows=[dict(zip(table.columns, row)) for row in table.raw_rows],
        )
    with capsys.disabled():
        print()
        print(table.render())
        print(f"[saved to {path}]")
