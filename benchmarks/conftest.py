"""Benchmark-suite helpers.

Each ``bench_eXX`` module (a) times a representative core operation
with pytest-benchmark and (b) regenerates its experiment table, prints
it to the live terminal, and archives it under ``benchmarks/results/``
so ``pytest benchmarks/ --benchmark-only`` reproduces every table of
EXPERIMENTS.md in one command.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit_table(table, name, capsys) -> None:
    """Print *table* to the real terminal and archive it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.render() + "\n")
    with capsys.disabled():
        print()
        print(table.render())
        print(f"[saved to {path}]")
