"""World-sweep benches: the scenario grid as a perf + accuracy artifact.

Times one representative out-of-core cell (the unit of sweep cost),
then runs a compact four-family grid through
:func:`repro.worlds.run_sweep` and archives the sweep document itself
under ``benchmarks/results/worlds_sweep.json`` — the sweep JSON *is*
the benchmark artifact, validated here against both the shared
benchmark schema and the stricter per-row sweep schema.
"""

import json
import os
import tempfile

from conftest import RESULTS_DIR, emit_table, validate_benchmark_json

from repro.experiments.tables import Table
from repro.worlds import (
    FamilySpec,
    GridCell,
    ScenarioSpec,
    WorldGrid,
    materialize_workload,
    run_cell,
    run_sweep,
    validate_sweep_document,
)


def _bench_grid() -> WorldGrid:
    return WorldGrid(
        families=[
            {"family": "gnp", "n": 48, "p": 0.18},
            {"family": "ws", "n": 60, "k": 4, "rewire_p": 0.1},
            {"family": "kronecker", "power": 6, "edges": 300},
            {"family": "config", "n": 80, "exponent": 2.5, "min_degree": 2},
        ],
        scenarios=["insertion", {"kind": "deletion_heavy", "deletion_rate": 0.4}],
        estimators=["insertion", "turnstile", "two-pass"],
        patterns=["triangle", "S3"],
        budgets=[100, 300],
        copies=2,
        epsilon=0.6,
        seed=2022,
        cache="lru:1M",
    )


def test_worlds_cell_cost(benchmark, capsys):
    """Time one out-of-core cell: materialize once, estimate repeatedly."""
    grid = _bench_grid()
    cell = GridCell(
        family=FamilySpec.create("kronecker", power=6, edges=300),
        scenario=ScenarioSpec.create("insertion"),
        estimator="insertion",
        pattern="triangle",
        budget=400,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-worlds-") as tmp:
        path = os.path.join(tmp, "cell.reb")
        materialize_workload(cell.family, cell.scenario, 2022, path)

        row = benchmark(lambda: run_cell(cell, grid, path, truth=1))
    assert row["passes"] == 3
    assert row["peak_resident_bytes"] > 0


def test_worlds_sweep_archives_schema_valid_json(capsys):
    """The full grid sweep, archived as the worlds_sweep benchmark JSON."""
    grid = _bench_grid()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "worlds_sweep.json")
    with tempfile.TemporaryDirectory(prefix="repro-bench-worlds-") as tmp:
        document = run_sweep(grid, out_path=out_path, workdir=tmp)

    # The archived document must satisfy both contracts: the shared
    # benchmark schema (so results/ stays uniform) and the stricter
    # sweep schema (typed per-cell columns).
    with open(out_path, "r", encoding="utf-8") as handle:
        archived = json.load(handle)
    validate_benchmark_json(archived)
    validate_sweep_document(archived)
    assert len(archived["rows"]) == len(document["rows"]) >= 4 * 2 * 2

    table = Table(
        title=(f"World sweep: {len(archived['rows'])} cells "
               f"(4 families x 2 scenarios x 3 estimators x 2 patterns x "
               f"2 budgets, out-of-core)"),
        columns=["cell", "rel err", "viol", "peak B", "upd/s"],
    )
    for row in archived["rows"]:
        table.add_row(
            row["cell"],
            f"{row['rel_err']:.3f}",
            "YES" if row["eps_violation"] else "no",
            row["peak_resident_bytes"],
            f"{row['updates_per_s']:.0f}",
        )
    emit_table(table, "worlds_sweep", capsys, json_twin=False)
