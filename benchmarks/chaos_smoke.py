"""Chaos smoke check for CI (no pytest, no benchmarks).

Runs the seeded fault drills end to end — the same recovery paths
``tests/test_faults.py`` exercises, but as one self-contained script a
human can re-run from a single printed seed.  Fails loudly (exit 1) if
any leg of the robustness contract breaks:

* **worker kill → respawn** — a live engine whose worker takes a
  SIGKILL mid-batch respawns it, replays the journal, and finishes
  bit-equal to an uninterrupted run;
* **worker kill → degrade** — with the respawn budget exhausted, the
  engine serves the median of the surviving copies, each bit-equal to
  its uninterrupted twin;
* **torn delta checkpoint** — a truncated delta tip is dropped with a
  warning; restore lands on the longest valid prefix and re-feeding
  reconverges bit-equal;
* **disk-error retry** — two injected transient ``EIO`` failures are
  absorbed by the three-attempt retry policy; a third surfaces.
* **tenant kill → restore-on-open** — a ``repro.service`` tenant
  dropped mid-feed without its final checkpoint reopens from the last
  scheduled snapshot; re-feeding from the reported element reconverges
  bit-equal to an uninterrupted engine.

The drill seed defaults to 0 and can be pinned for reproduction::

    PYTHONPATH=src REPRO_CHAOS_SEED=1234 python benchmarks/chaos_smoke.py
"""

import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.engine import EstimatorSpec, LiveEngine  # noqa: E402
from repro.engine.parallel import (  # noqa: E402
    build_triest,
    leaked_shm_segments,
    run_process_engine,
)
from repro.faults import FaultPlan, activate, truncate_file  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
FAILURES = []


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"[chaos-smoke] {label}: {status}{(' — ' + detail) if detail else ''}")
    if not condition:
        FAILURES.append(label)


def _stream():
    graph = gen.power_law_cluster(200, 4, 0.6, SEED + 100)
    return insertion_stream(graph, rng=SEED + 101)


def _specs(copies=4):
    return [
        EstimatorSpec(
            name=f"t{index}",
            factory=build_triest,
            kwargs=dict(capacity=80, rng=SEED + 31 + index, name=f"t{index}"),
        )
        for index in range(copies)
    ]


def _reference_estimates(stream, copies=4):
    engine = LiveEngine(n=stream.n)
    engine.register_all(_specs(copies))
    engine.feed(stream.columns())
    results = {n: r.estimate for n, r in engine.estimate().items()}
    engine.close()
    return results


def _feed_chunks(engine, stream, chunk=64):
    u, v, d = stream.columns()
    for start in range(0, len(u), chunk):
        engine.feed((u[start:start + chunk], v[start:start + chunk],
                     d[start:start + chunk]))


def drill_kill_then_respawn(stream, reference):
    plan = FaultPlan(seed=SEED).kill_worker(1, nth_batch=3)
    engine = LiveEngine(n=stream.n, backend="thread", workers=4,
                        batch_size=64, respawn_budget=2, fault_plan=plan)
    engine.register_all(_specs())
    _feed_chunks(engine, stream)
    results = {n: r.estimate for n, r in engine.estimate().items()}
    check("respawned engine is not degraded", not engine.degraded,
          f"lost={engine.lost_estimators}")
    check("respawn consumed one budget slot", engine.respawns_left == 1,
          f"respawns_left={engine.respawns_left}")
    check("respawn replay is bit-equal to the uninterrupted run",
          results == reference, f"{results} vs {reference}")
    engine.close()


def drill_kill_then_degrade(stream, reference):
    plan = FaultPlan(seed=SEED).kill_worker(1, nth_batch=3)
    engine = LiveEngine(n=stream.n, backend="thread", workers=4,
                        batch_size=64, respawn_budget=0, fault_plan=plan)
    engine.register_all(_specs())
    _feed_chunks(engine, stream)
    results = {n: r.estimate for n, r in engine.estimate().items()}
    check("budget-exhausted engine is degraded", engine.degraded)
    check("exactly one estimator was lost",
          engine.lost_estimators == ["t1"],
          f"lost={engine.lost_estimators}")
    survivors_match = all(results[n] == reference[n] for n in results)
    check("surviving copies are bit-equal to their uninterrupted twins",
          survivors_match, f"{results} vs {reference}")
    engine.close()


def drill_sigkill_process_pool(stream):
    baseline = set(leaked_shm_segments())
    plan = FaultPlan(seed=SEED).kill_worker(0, nth_batch=2)
    report = run_process_engine(
        stream, _specs(copies=2), workers=2, batch_size=64,
        on_worker_loss="degrade", fault_plan=plan,
    )
    check("process pool degrades after a real SIGKILL",
          report.degraded and report.lost == ("t0",),
          f"degraded={report.degraded} lost={report.lost}")
    leaked = set(leaked_shm_segments()) - baseline
    check("no leaked shm segments after the SIGKILL drill", not leaked,
          ", ".join(sorted(leaked)))


def drill_torn_delta_checkpoint(stream):
    from repro.engine.estimators import fgp_insertion_estimator
    from repro.patterns import pattern as zoo

    pattern = zoo.triangle()
    u, v, d = stream.columns()
    half, rest = len(u) // 2, 3 * len(u) // 4
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    path = os.path.join(tmp, "live.ckpt")

    def build():
        engine = LiveEngine(n=stream.n)
        for index in range(2):
            engine.register_spec(EstimatorSpec(
                name=f"copy-{index}",
                factory=fgp_insertion_estimator,
                kwargs=dict(pattern=pattern, trials=150,
                            rng=SEED + 400 + index, name=f"copy-{index}"),
            ))
        return engine

    engine = build()
    engine.feed((u[:half], v[:half], d[:half]))
    engine.snapshot(path, mode="delta")  # the full base
    engine.feed((u[half:rest], v[half:rest], d[half:rest]))
    tip = engine.snapshot(path, mode="delta")
    engine.feed((u[rest:], v[rest:], d[rest:]))
    expected = {n: r.estimate for n, r in engine.estimate().items()}
    engine.close()

    # Tear the tip at a seed-chosen offset near the end.
    rng = FaultPlan(seed=SEED).rng("torn-delta")
    truncate_file(tip, -rng.randrange(1, 16))
    restored = LiveEngine.restore(path)
    info = restored.restore_info
    check("torn tip is dropped, not fatal",
          info["fell_back"] and info["dropped"] == [tip], f"info={info}")
    check("restore lands on the last valid point",
          restored.elements == half, f"elements={restored.elements}")
    restored.feed((u[half:], v[half:], d[half:]))
    results = {n: r.estimate for n, r in restored.estimate().items()}
    check("the equality check is not vacuous",
          any(value != 0 for value in expected.values()), f"{expected}")
    check("re-fed engine is bit-equal to the untorn run",
          results == expected, f"{results} vs {expected}")
    restored.close()


def drill_disk_error_retry(stream):
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    path = os.path.join(tmp, "retry.ckpt")
    engine = LiveEngine(n=stream.n)
    engine.register_all(_specs(copies=2))
    u, v, d = stream.columns()
    engine.feed((u[:100], v[:100], d[:100]))

    with activate(FaultPlan(seed=SEED).fail_disk_write(nth=1, count=2)):
        try:
            engine.snapshot(path)
            check("two transient EIO failures are retried away", True)
        except OSError as error:
            check("two transient EIO failures are retried away", False,
                  str(error))
    restored = LiveEngine.restore(path)
    check("the retried checkpoint restores", restored.elements == 100)
    restored.close()

    with activate(FaultPlan(seed=SEED).fail_disk_write(nth=1, count=3)):
        try:
            engine.snapshot(path + ".doomed")
            check("a third consecutive EIO surfaces", False, "no error raised")
        except OSError:
            check("a third consecutive EIO surfaces", True)
    check("the failed write left no target behind",
          not os.path.exists(path + ".doomed")
          and not os.path.exists(path + ".doomed.tmp"))
    engine.close()


def drill_service_tenant_kill(stream):
    """Kill a service tenant mid-feed; restore-on-open must reconverge."""
    from repro.engine import median_estimate
    from repro.service import ServerThread, ServiceClient

    u, v, d = stream.columns()
    copies, capacity, chunk, every = 3, 80, 64, 150
    seed = SEED + 700
    # Crash after 5 chunks: past the first scheduled checkpoint (fires
    # at 192 elements with every=150 and 64-wide feeds) but strictly
    # before the next, so the reopen has a real tail to re-feed.
    crash = 5 * chunk
    if len(u) <= crash + chunk:
        check("stream is long enough for the service drill", False,
              f"{len(u)} elements")
        return

    engine = LiveEngine(n=stream.n)
    for index in range(copies):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name, factory=build_triest,
            kwargs=dict(capacity=capacity, rng=seed + 1 + index, name=name)))
    engine.feed((u, v, d))
    expected = median_estimate(engine.estimate())
    engine.close()

    root = tempfile.mkdtemp(prefix="repro-chaos-service-")
    with ServerThread(root=root) as server:
        with ServiceClient(server.host, server.port) as client:
            client.open("victim", config={
                "n": stream.n, "estimator": "triest", "copies": copies,
                "capacity": capacity, "seed": seed,
                "checkpoint": {"every_elements": every}})
            for start in range(0, crash, chunk):
                client.feed("victim", u[start:start + chunk],
                            v[start:start + chunk], d[start:start + chunk])
            client.kill("victim")
            reopened = client.open("victim")
            resumed = reopened["elements"]
            check("killed tenant reopens from a mid-stream checkpoint",
                  reopened["restored"] is True and 0 < resumed < crash,
                  f"resumed_at={resumed}, crash point {crash}")
            for start in range(resumed, len(u), chunk):
                client.feed("victim", u[start:start + chunk],
                            v[start:start + chunk], d[start:start + chunk])
            wire = client.estimate("victim")["median"]
            check("re-fed tenant is bit-equal to the uninterrupted engine",
                  wire == expected, f"wire={wire} direct={expected}")
            client.close_stream("victim", checkpoint=False)


def main():
    print(f"[chaos-smoke] seed={SEED} (rerun with REPRO_CHAOS_SEED={SEED})")
    stream = _stream()
    reference = _reference_estimates(stream)
    drill_kill_then_respawn(stream, reference)
    drill_kill_then_degrade(stream, reference)
    drill_sigkill_process_pool(stream)
    drill_torn_delta_checkpoint(stream)
    drill_disk_error_retry(stream)
    drill_service_tenant_kill(stream)
    if FAILURES:
        print(f"[chaos-smoke] FAILED ({len(FAILURES)}): {', '.join(FAILURES)}")
        print(f"[chaos-smoke] reproduce with: PYTHONPATH=src "
              f"REPRO_CHAOS_SEED={SEED} python benchmarks/chaos_smoke.py")
        return 1
    print("[chaos-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
