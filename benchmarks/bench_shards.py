"""Sharded-ingestion benches: scatter/merge scaling vs the shard count.

What hash-partitioned ingestion (:mod:`repro.engine.sharded`) costs
and buys on a disk-backed turnstile stream: updates/second through the
scatter/merge driver, the metered peak decoded bytes per shard under a
bounded LRU cache (the memory the driver actually holds resident), and
the wall-clock share of the per-pass merge barrier — all as a function
of the shard count.  Every sharded row is asserted **bit-identical**
to the unsharded mirror-mode run first, so the table can never report
a fast-but-wrong configuration.

The archived ``sharded_ingest`` JSON is the machine-readable scaling
table the CI merge-smoke job validates.
"""

import os
import tempfile
import time

from conftest import emit_json, emit_table

from repro.engine import count_subgraphs_turnstile_fused
from repro.engine.sharded import count_subgraphs_turnstile_sharded
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.datasets import (
    DiskEdgeStream,
    open_stream_shards,
    write_binary_updates,
    write_stream_shards,
)
from repro.streams.generators import turnstile_churn_stream

SHARD_COUNTS = (1, 2, 4, 8)
CACHE = "lru:256k"


def _workload(tmp):
    """A disk-backed turnstile stream (inserts + churn deletions).

    Power-law-cluster graphs are triangle-dense, so the trial budget
    below yields a **nonzero** median estimate — the bit-equality
    assertions compare real numbers, not a vacuous 0.0 == 0.0.
    """
    graph = gen.power_law_cluster(300, 5, 0.8, 11)
    stream = turnstile_churn_stream(graph, churn_edges=200, rng=12)
    u, v, delta = stream.columns()
    path = write_binary_updates(
        os.path.join(tmp, "shards-bench.reb"), stream.n, u, v, delta,
        allow_deletions=True,
    )
    return graph, path


def test_sharded_ingest_scaling(benchmark, capsys):
    graph = None
    copies, trials = 4, 48
    pattern = zoo.triangle()

    with tempfile.TemporaryDirectory() as tmp:
        graph, path = _workload(tmp)
        base = DiskEdgeStream(path, cache="none")
        stream_length = base.length

        # The correctness anchor: the unsharded mirror-mode run every
        # sharded row must reproduce bit for bit.
        start = time.perf_counter()
        reference = count_subgraphs_turnstile_fused(
            base, pattern, copies=copies, trials=trials, rng=7, mode="mirror",
        )
        reference_seconds = time.perf_counter() - start
        assert reference.estimate > 0, "vacuous workload: tune graph/trials"
        updates = reference.passes * stream_length

        rows = [
            {
                "shards": 0,
                "seconds": reference_seconds,
                "updates_per_sec": updates / reference_seconds,
                "peak_resident_bytes": 0,
                "merge_seconds": 0.0,
                "estimate": reference.estimate,
            }
        ]
        for shards in SHARD_COUNTS:
            paths = write_stream_shards(path, shards)
            shard_streams = open_stream_shards(path, shards, cache=CACHE)
            start = time.perf_counter()
            result = count_subgraphs_turnstile_sharded(
                shard_streams, pattern, copies=copies, trials=trials, rng=7,
            )
            seconds = time.perf_counter() - start
            assert result.estimates == reference.estimates
            assert result.passes == reference.passes
            peak = max(
                shard.cache_policy.peak_resident_bytes for shard in shard_streams
            )
            rows.append(
                {
                    "shards": shards,
                    "seconds": seconds,
                    "updates_per_sec": updates / seconds,
                    "peak_resident_bytes": peak,
                    "merge_seconds": result.details["merge_seconds"],
                    "estimate": result.estimate,
                }
            )
            for shard_path in paths:
                os.unlink(shard_path)

        def rerun_two_shards():
            two = write_stream_shards(path, 2)
            try:
                return count_subgraphs_turnstile_sharded(
                    open_stream_shards(path, 2, cache=CACHE),
                    pattern, copies=copies, trials=trials, rng=7,
                )
            finally:
                for shard_path in two:
                    os.unlink(shard_path)

        result = benchmark.pedantic(rerun_two_shards, rounds=1, iterations=1)
        assert result.estimates == reference.estimates

    table = Table(
        f"Sharded turnstile ingestion (K={copies}, trials/copy={trials}, "
        f"m={graph.m}, updates={stream_length}, cache={CACHE})",
        ["shards", "seconds", "updates/s", "peak bytes/shard",
         "merge seconds", "estimate"],
    )
    for row in rows:
        table.add_row(
            "unsharded" if row["shards"] == 0 else row["shards"],
            f"{row['seconds']:.3f}",
            f"{row['updates_per_sec']:,.0f}",
            f"{row['peak_resident_bytes']:,}",
            f"{row['merge_seconds']:.4f}",
            f"{row['estimate']:.1f}",
        )
    emit_table(table, "sharded_ingest", capsys, json_twin=False)
    emit_json(
        "sharded_ingest",
        params={
            "n": graph.n,
            "m": graph.m,
            "stream_updates": stream_length,
            "copies": copies,
            "trials_per_copy": trials,
            "pattern": pattern.name,
            "backend": "serial",
            "cache": CACHE,
            "shard_counts": list(SHARD_COUNTS),
        },
        rows=rows,
        extra={"bit_equal_to_unsharded": True},
    )
