#!/usr/bin/env python3
"""CI perf-smoke: a tiny throughput run that validates the JSON contract.

Runs a miniature version of the K-copy insertion-only throughput
benchmark on both pipelines (scalar and columnar), checks the
mirror-mode bit-equality invariant, archives the result through the
same ``emit_json`` path the real benchmarks use, and re-reads the file
to validate the schema (``benchmarks/conftest.JSON_SCHEMA_KEYS``).

It fails on *errors* — a broken pipeline, a bit-equality violation, a
malformed document — never on timings, so it stays flake-free on
shared CI runners.

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from conftest import emit_json, validate_benchmark_json  # noqa: E402

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.patterns import pattern as zoo  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402


def main() -> int:
    graph = gen.barabasi_albert(1500, 4, rng=11)
    copies, trials = 4, 20
    pattern = zoo.triangle()
    ensemble_elements = copies * 3 * graph.m

    rows = []
    estimates = {}
    for columnar in (False, True):
        stream = insertion_stream(graph, rng=12)
        start = time.perf_counter()
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials,
            rng=13,
            mode=FusionMode.MIRROR,
            columnar=columnar,
        )
        elapsed = time.perf_counter() - start
        if fused.passes != 3:
            print(f"perf-smoke: expected 3 fused passes, got {fused.passes}")
            return 1
        estimates[columnar] = fused.estimates
        rows.append(
            {
                "pipeline": "columnar" if columnar else "scalar",
                "seconds": elapsed,
                "edges_per_sec": ensemble_elements / elapsed,
                "estimate": fused.estimate,
            }
        )

    if estimates[False] != estimates[True]:
        print("perf-smoke: mirror-mode bit-equality violated between pipelines")
        return 1

    path = emit_json(
        "perf_smoke",
        params={
            "n": graph.n,
            "m": graph.m,
            "copies": copies,
            "trials_per_copy": trials,
            "pattern": pattern.name,
            "mode": "mirror",
        },
        rows=rows,
    )
    # Round-trip: the archived document must satisfy the shared schema.
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        validate_benchmark_json(document)
    except ValueError as error:
        print(f"perf-smoke: emitted JSON failed schema validation: {error}")
        return 1
    print(
        f"perf-smoke: ok (m={graph.m}, scalar {rows[0]['edges_per_sec']:,.0f} e/s, "
        f"columnar {rows[1]['edges_per_sec']:,.0f} e/s) -> {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
