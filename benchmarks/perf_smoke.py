#!/usr/bin/env python3
"""CI perf-smoke: a tiny throughput run that validates the JSON contract.

Runs a miniature version of the K-copy insertion-only throughput
benchmark on both pipelines (scalar and columnar), checks the
mirror-mode bit-equality invariant, then replays the same stream from
a disk-backed (tmpfile) binary through the fused engine under an LRU
batch cache — asserting the out-of-core estimates equal the in-memory
ones bit for bit and the cache stayed under its byte budget.  Both
legs archive through the same ``emit_json`` path the real benchmarks
use, and the emitted documents (including the new ``ingest_smoke``
ingestion table) are re-read and validated against the shared schema
(``benchmarks/conftest.JSON_SCHEMA_KEYS``).

It fails on *errors* — a broken pipeline, a bit-equality violation, a
budget overrun, a malformed document — never on timings, so it stays
flake-free on shared CI runners.

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from conftest import emit_json, validate_benchmark_json  # noqa: E402

import numpy as np  # noqa: E402

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused  # noqa: E402
from repro.graph import generators as gen  # noqa: E402
from repro.patterns import pattern as zoo  # noqa: E402
from repro.streams.datasets import DiskEdgeStream, write_binary_updates  # noqa: E402
from repro.streams.stream import insertion_stream  # noqa: E402


def disk_ingestion_smoke(graph, pattern, copies, trials, reference) -> int:
    """Disk-backed leg: a tmpfile stream through the fused engine.

    Writes the same shuffled update sequence the in-memory run used to
    a binary tmpfile, streams it back through a bounded LRU cache, and
    checks (a) bit-equality of the mirror estimates with *reference*,
    (b) the LRU byte budget was respected, and (c) the archived
    ``ingest_smoke`` JSON validates against the shared schema.
    """
    u, v, _ = insertion_stream(graph, rng=12).columns()
    budget = 64 << 10
    with tempfile.TemporaryDirectory() as tmp:
        path = write_binary_updates(os.path.join(tmp, "smoke.reb"), graph.n, u, v)
        stream = DiskEdgeStream(path, cache=f"lru:{budget}")
        start = time.perf_counter()
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials,
            rng=13,
            mode=FusionMode.MIRROR,
            batch_size=512,
        )
        elapsed = time.perf_counter() - start
        policy = stream.cache_policy
        if fused.estimates != reference:
            print("perf-smoke: disk-backed estimates diverged from in-memory run")
            return 1
        if policy.peak_resident_bytes > budget:
            print(
                f"perf-smoke: LRU cache exceeded its budget "
                f"({policy.peak_resident_bytes} > {budget})"
            )
            return 1
        path = emit_json(
            "ingest_smoke",
            params={
                "n": graph.n,
                "m": graph.m,
                "copies": copies,
                "trials_per_copy": trials,
                "pattern": pattern.name,
                "mode": "mirror",
                "cache": "lru",
                "cache_budget_bytes": budget,
            },
            rows=[
                {
                    "source": "disk",
                    "seconds": elapsed,
                    "edges_per_sec": copies * 3 * graph.m / elapsed,
                    "estimate": fused.estimate,
                    "cache_peak_bytes": policy.peak_resident_bytes,
                    "cache_hits": policy.hits,
                    "cache_misses": policy.misses,
                }
            ],
        )
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        validate_benchmark_json(document)
    except ValueError as error:
        print(f"perf-smoke: ingest_smoke JSON failed schema validation: {error}")
        return 1
    print(
        f"perf-smoke: disk leg ok (lru peak {policy.peak_resident_bytes:,} B "
        f"<= {budget:,} B, hits {policy.hits}, misses {policy.misses}) -> {path}"
    )
    return 0


def main() -> int:
    graph = gen.barabasi_albert(1500, 4, rng=11)
    copies, trials = 4, 20
    pattern = zoo.triangle()
    ensemble_elements = copies * 3 * graph.m

    rows = []
    estimates = {}
    for columnar in (False, True):
        stream = insertion_stream(graph, rng=12)
        start = time.perf_counter()
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials,
            rng=13,
            mode=FusionMode.MIRROR,
            columnar=columnar,
        )
        elapsed = time.perf_counter() - start
        if fused.passes != 3:
            print(f"perf-smoke: expected 3 fused passes, got {fused.passes}")
            return 1
        estimates[columnar] = fused.estimates
        rows.append(
            {
                "pipeline": "columnar" if columnar else "scalar",
                "seconds": elapsed,
                "edges_per_sec": ensemble_elements / elapsed,
                "estimate": fused.estimate,
            }
        )

    if estimates[False] != estimates[True]:
        print("perf-smoke: mirror-mode bit-equality violated between pipelines")
        return 1

    path = emit_json(
        "perf_smoke",
        params={
            "n": graph.n,
            "m": graph.m,
            "copies": copies,
            "trials_per_copy": trials,
            "pattern": pattern.name,
            "mode": "mirror",
        },
        rows=rows,
    )
    # Round-trip: the archived document must satisfy the shared schema.
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        validate_benchmark_json(document)
    except ValueError as error:
        print(f"perf-smoke: emitted JSON failed schema validation: {error}")
        return 1
    print(
        f"perf-smoke: ok (m={graph.m}, scalar {rows[0]['edges_per_sec']:,.0f} e/s, "
        f"columnar {rows[1]['edges_per_sec']:,.0f} e/s) -> {path}"
    )
    return disk_ingestion_smoke(graph, pattern, copies, trials, estimates[True])


if __name__ == "__main__":
    raise SystemExit(main())
