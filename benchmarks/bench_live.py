"""Checkpoint micro-benchmark: snapshot/restore latency and size vs K.

Feeds a fixed stream into a :class:`~repro.engine.live.LiveEngine`
carrying K mirror FGP copies, then measures (a) ``snapshot()`` wall
time, (b) checkpoint size on disk, (c) ``LiveEngine.restore()`` wall
time — and asserts the restored engine answers bit-identically, so the
numbers can never come from a checkpoint that silently dropped state.
Archived as ``benchmarks/results/live_checkpoint.{txt,json}`` (the
JSON validated by the shared schema checker in ``conftest.py``).
"""

import os
import tempfile
import time

from conftest import emit_json, emit_table

from repro.engine import EstimatorSpec, LiveEngine, fgp_insertion_estimator
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream

SEED = 7
TRIALS = 100
COPY_COUNTS = (1, 4, 16)


def _build_live(stream, pattern, copies: int) -> LiveEngine:
    engine = LiveEngine(n=stream.n)
    for index in range(copies):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name,
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=TRIALS, rng=SEED + 10 + index,
                        name=name),
        ))
    engine.feed(stream.columns())
    return engine


def test_live_checkpoint_scaling(benchmark, capsys):
    graph = gen.power_law_cluster(300, 5, 0.6, SEED)
    stream = insertion_stream(graph, rng=SEED + 1)
    pattern = zoo.triangle()
    tmp = tempfile.mkdtemp(prefix="repro-bench-live-")

    table = Table(
        f"Live-engine checkpoints vs K (m={graph.m}, trials/copy={TRIALS}, "
        "FGP 3-pass insertion mirror copies)",
        ["copies", "snapshot ms", "restore ms", "bytes", "bytes/copy",
         "restored =="],
    )
    rows = []
    largest_engine = None
    largest_path = None
    for copies in COPY_COUNTS:
        engine = _build_live(stream, pattern, copies)
        path = os.path.join(tmp, f"live-{copies}.ckpt")
        start = time.perf_counter()
        engine.snapshot(path)
        snapshot_seconds = time.perf_counter() - start
        size = os.path.getsize(path)
        start = time.perf_counter()
        restored = LiveEngine.restore(path)
        restore_seconds = time.perf_counter() - start
        agree = (
            restored.estimate(["copy-0"])["copy-0"].estimate
            == engine.estimate(["copy-0"])["copy-0"].estimate
        )
        assert agree, "restored engine diverged from the live one"
        table.add_row(
            copies,
            f"{snapshot_seconds * 1e3:.1f}",
            f"{restore_seconds * 1e3:.1f}",
            size,
            size // copies,
            "yes" if agree else "NO",
        )
        rows.append(dict(
            copies=copies,
            snapshot_seconds=snapshot_seconds,
            restore_seconds=restore_seconds,
            checkpoint_bytes=size,
            bytes_per_copy=size // copies,
            elements=engine.elements,
        ))
        largest_engine, largest_path = engine, path

    emit_json(
        "live_checkpoint",
        params=dict(n=graph.n, m=graph.m, trials=TRIALS, seed=SEED,
                    copy_counts=list(COPY_COUNTS)),
        rows=rows,
    )
    emit_table(table, "live_checkpoint", capsys, json_twin=False)

    benchmark(lambda: largest_engine.snapshot(largest_path))
