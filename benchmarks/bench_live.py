"""Checkpoint micro-benchmark: snapshot/restore latency and size vs K.

Feeds a fixed stream into a :class:`~repro.engine.live.LiveEngine`
carrying K mirror FGP copies, then measures (a) ``snapshot()`` wall
time, (b) checkpoint size on disk, (c) ``LiveEngine.restore()`` wall
time — and asserts the restored engine answers bit-identically, so the
numbers can never come from a checkpoint that silently dropped state.

A second sweep measures **delta** checkpoints (``mode="delta"``): a
full base followed by journal-tail snapshots after D more updates,
against a full snapshot taken at the same point.  Delta bytes must
scale with D (updates since the base), not with the estimator state —
that is the whole point of the tail format.  Archived as
``benchmarks/results/live_checkpoint.{txt,json}`` (the JSON validated
by the shared schema checker in ``conftest.py``).
"""

import os
import tempfile
import time

from conftest import emit_json, emit_table

from repro.engine import EstimatorSpec, LiveEngine, fgp_insertion_estimator
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream

SEED = 7
TRIALS = 100
COPY_COUNTS = (1, 4, 16)
DELTA_COPIES = 4
DELTA_UPDATES = (128, 256, 512)


def _build_live(stream, pattern, copies: int, limit=None) -> LiveEngine:
    engine = LiveEngine(n=stream.n)
    for index in range(copies):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name,
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=TRIALS, rng=SEED + 10 + index,
                        name=name),
        ))
    u, v, delta = stream.columns()
    if limit is not None:
        u, v, delta = u[:limit], v[:limit], delta[:limit]
    engine.feed((u, v, delta))
    return engine


def test_live_checkpoint_scaling(benchmark, capsys):
    graph = gen.power_law_cluster(300, 5, 0.6, SEED)
    stream = insertion_stream(graph, rng=SEED + 1)
    pattern = zoo.triangle()
    tmp = tempfile.mkdtemp(prefix="repro-bench-live-")

    table = Table(
        f"Live-engine checkpoints (m={graph.m}, trials/copy={TRIALS}, "
        "FGP 3-pass insertion mirror copies; delta = journal tail only)",
        ["copies", "mode", "Δ updates", "snapshot ms", "restore ms",
         "bytes", "bytes/copy", "restored =="],
    )
    rows = []
    largest_engine = None
    largest_path = None
    for copies in COPY_COUNTS:
        engine = _build_live(stream, pattern, copies)
        path = os.path.join(tmp, f"live-{copies}.ckpt")
        start = time.perf_counter()
        engine.snapshot(path)
        snapshot_seconds = time.perf_counter() - start
        size = os.path.getsize(path)
        start = time.perf_counter()
        restored = LiveEngine.restore(path)
        restore_seconds = time.perf_counter() - start
        agree = (
            restored.estimate(["copy-0"])["copy-0"].estimate
            == engine.estimate(["copy-0"])["copy-0"].estimate
        )
        assert agree, "restored engine diverged from the live one"
        table.add_row(
            copies,
            "full",
            "-",
            f"{snapshot_seconds * 1e3:.1f}",
            f"{restore_seconds * 1e3:.1f}",
            size,
            size // copies,
            "yes" if agree else "NO",
        )
        rows.append(dict(
            copies=copies,
            mode="full",
            updates_since_base=0,
            snapshot_seconds=snapshot_seconds,
            restore_seconds=restore_seconds,
            checkpoint_bytes=size,
            bytes_per_copy=size // copies,
            elements=engine.elements,
        ))
        largest_engine, largest_path = engine, path

    # -- delta sweep: tail bytes scale with updates-since-base ------------
    base_elements = stream.length - sum(DELTA_UPDATES)
    assert base_elements > 0, "stream too short for the delta sweep"
    engine = _build_live(stream, pattern, DELTA_COPIES, limit=base_elements)
    delta_base = os.path.join(tmp, "live-delta.ckpt")
    engine.snapshot(delta_base, mode="delta")  # the first write is the base
    u, v, d = stream.columns()
    cursor = base_elements
    delta_sizes = []
    for updates in DELTA_UPDATES:
        engine.feed((u[cursor:cursor + updates], v[cursor:cursor + updates],
                     d[cursor:cursor + updates]))
        cursor += updates
        start = time.perf_counter()
        written = engine.snapshot(delta_base, mode="delta")
        delta_seconds = time.perf_counter() - start
        delta_bytes = os.path.getsize(written)
        delta_sizes.append(delta_bytes)
        # A full snapshot of the same moment, for the honest comparison.
        full_twin = os.path.join(tmp, f"live-full-at-{cursor}.ckpt")
        start = time.perf_counter()
        engine.snapshot(full_twin)
        full_seconds = time.perf_counter() - start
        full_bytes = os.path.getsize(full_twin)
        assert delta_bytes < full_bytes, (
            f"delta ({delta_bytes} B) should undercut the full snapshot "
            f"({full_bytes} B)"
        )
        table.add_row(DELTA_COPIES, "delta", updates,
                      f"{delta_seconds * 1e3:.1f}", "-",
                      delta_bytes, delta_bytes // DELTA_COPIES, "-")
        table.add_row(DELTA_COPIES, "full", updates,
                      f"{full_seconds * 1e3:.1f}", "-",
                      full_bytes, full_bytes // DELTA_COPIES, "-")
        rows.append(dict(
            copies=DELTA_COPIES,
            mode="delta",
            updates_since_base=updates,
            snapshot_seconds=delta_seconds,
            checkpoint_bytes=delta_bytes,
            full_bytes_at_same_point=full_bytes,
            elements=cursor,
        ))
    assert delta_sizes == sorted(delta_sizes), (
        "delta bytes must grow with updates-since-base"
    )
    start = time.perf_counter()
    restored = LiveEngine.restore(delta_base)
    chain_restore_seconds = time.perf_counter() - start
    assert restored.restore_info["deltas_applied"] == len(DELTA_UPDATES)
    assert not restored.restore_info["fell_back"]
    agree = (
        restored.estimate(["copy-0"])["copy-0"].estimate
        == engine.estimate(["copy-0"])["copy-0"].estimate
    )
    assert agree, "delta-chain restore diverged from the live engine"
    table.add_row(DELTA_COPIES, "chain", sum(DELTA_UPDATES), "-",
                  f"{chain_restore_seconds * 1e3:.1f}",
                  sum(delta_sizes), "-", "yes")
    rows.append(dict(
        copies=DELTA_COPIES,
        mode="chain",
        updates_since_base=sum(DELTA_UPDATES),
        restore_seconds=chain_restore_seconds,
        checkpoint_bytes=sum(delta_sizes),
        deltas_applied=len(DELTA_UPDATES),
        elements=cursor,
    ))

    emit_json(
        "live_checkpoint",
        params=dict(n=graph.n, m=graph.m, trials=TRIALS, seed=SEED,
                    copy_counts=list(COPY_COUNTS),
                    delta_copies=DELTA_COPIES,
                    delta_updates=list(DELTA_UPDATES)),
        rows=rows,
    )
    emit_table(table, "live_checkpoint", capsys, json_twin=False)

    benchmark(lambda: largest_engine.snapshot(largest_path))
