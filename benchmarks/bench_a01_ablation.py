"""A1 bench: sampler with ablated wedge branches + the ablation table."""

from conftest import emit_table

from repro.experiments import a01_wedge_ablation
from repro.experiments.a01_wedge_ablation import pendant_clique_graph
from repro.fgp.rounds import WEDGE_BOTH, subgraph_sampler_rounds
from repro.oracle.direct import DirectAugmentedOracle
from repro.patterns import pattern as pattern_zoo
from repro.transform.driver import run_round_adaptive


def test_a01_high_branch_sampler(benchmark, capsys):
    graph = pendant_clique_graph(16, 6)
    pattern = pattern_zoo.triangle()

    def run_batch():
        oracle = DirectAugmentedOracle(graph, rng=1)
        generators = [
            subgraph_sampler_rounds(pattern, rng=i, wedge_branches=WEDGE_BOTH)
            for i in range(200)
        ]
        return run_round_adaptive(generators, oracle)

    result = benchmark(run_batch)
    assert result.rounds == 3

    emit_table(a01_wedge_ablation.run(fast=True), "a01_wedge_ablation", capsys)
