"""Stream-throughput benches: the cost model behind repro band 4/5.

The calibration note for this reproduction ("easy to code but slow on
large edge streams") is about exactly these numbers: elements/second
through the pass loop.  Two regimes matter:

* the oracle pass loop with *many* concurrent f1/f3 queries — this is
  where the skip-ahead reservoir bank turns O(m·K) coin flips into
  O(m + K log m) heap wakes (see ``repro.sketch.reservoir``);
* the plain baselines (single reservoir, TRIEST) as a floor.
"""

import os
import time

from conftest import emit_json, emit_table

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused
from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.sketch.reservoir import SingleReservoir, SkipAheadReservoirBank
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream


def test_throughput_skip_ahead_bank(benchmark):
    # 2000 concurrent single-item reservoirs over a 20k stream.
    def run_bank():
        bank = SkipAheadReservoirBank(2000, rng=1)
        for item in range(20_000):
            bank.offer(item)
        return bank

    bank = benchmark(run_bank)
    assert bank.count == 20_000


def test_throughput_naive_reservoirs_for_scale(benchmark):
    # The O(m*K) naive grid at 1/20 of the bank's K, for comparison.
    def run_naive():
        reservoirs = [SingleReservoir(rng=i) for i in range(100)]
        for item in range(20_000):
            for reservoir in reservoirs:
                reservoir.offer(item)
        return reservoirs

    reservoirs = benchmark(run_naive)
    assert all(r.count == 20_000 for r in reservoirs)


def test_throughput_three_pass_large_stream(benchmark, capsys):
    graph = gen.barabasi_albert(4000, 5, rng=2)

    def run_counter():
        stream = insertion_stream(graph, rng=3)
        return count_subgraphs_insertion_only(
            stream, zoo.triangle(), trials=3000, rng=4
        )

    result = benchmark.pedantic(run_counter, rounds=1, iterations=1)
    assert result.passes == 3

    # A small scaling table: elements/second at three stream sizes.
    table = Table(
        "Throughput: 3-pass triangle counter (trials=2000)",
        ["n", "m", "stream elements x passes", "seconds", "elements/s"],
    )
    for n in (1000, 2000, 4000):
        g = gen.barabasi_albert(n, 5, rng=5)
        stream = insertion_stream(g, rng=6)
        start = time.perf_counter()
        count_subgraphs_insertion_only(stream, zoo.triangle(), trials=2000, rng=7)
        elapsed = time.perf_counter() - start
        processed = 3 * g.m
        table.add_row(n, g.m, processed, elapsed, processed / elapsed)
    emit_table(table, "throughput", capsys)


def test_throughput_fused_vs_sequential(benchmark, capsys):
    """Median-of-K amplification: fused engine vs the sequential loop.

    The sequential loop replays the stream 3K times (K copies × 3
    passes); the fused engine replays it 3 times however large K is.
    ``elements/s`` counts the stream elements an ensemble member must
    observe — K × 3m either way — per wall-clock second, so the column
    ratio IS the wall-clock speedup.  The K=32 shared-mode row is the
    ISSUE's acceptance gate (>= 2x); observed ~3-5x on a laptop.
    """
    graph = gen.barabasi_albert(8000, 5, rng=11)
    trials_per_copy = 200
    pattern = zoo.triangle()

    table = Table(
        f"Fused vs sequential median-of-K (trials/copy={trials_per_copy}, "
        f"m={graph.m})",
        ["K", "mode", "stream passes", "seconds", "elements/s", "speedup"],
    )

    speedups = {}
    for copies in (8, 32):
        ensemble_elements = copies * 3 * graph.m

        stream = insertion_stream(graph, rng=12)
        start = time.perf_counter()
        for index in range(copies):
            count_subgraphs_insertion_only(
                stream, pattern, trials=trials_per_copy, rng=1000 + index
            )
        sequential_seconds = time.perf_counter() - start
        table.add_row(
            copies,
            "sequential",
            3 * copies,
            sequential_seconds,
            ensemble_elements / sequential_seconds,
            1.0,
        )

        for mode in (FusionMode.MIRROR, FusionMode.SHARED):
            stream = insertion_stream(graph, rng=12)
            start = time.perf_counter()
            fused = count_subgraphs_insertion_only_fused(
                stream,
                pattern,
                copies=copies,
                trials=trials_per_copy,
                rng=13,
                mode=mode,
            )
            seconds = time.perf_counter() - start
            assert fused.passes == 3
            assert stream.passes_used == 3
            speedup = sequential_seconds / seconds
            speedups[(copies, mode)] = speedup
            table.add_row(
                copies,
                f"fused-{mode}",
                3,
                seconds,
                ensemble_elements / seconds,
                speedup,
            )

    emit_table(table, "throughput_fused", capsys)
    assert speedups[(32, FusionMode.SHARED)] >= 2.0, (
        f"fused shared mode at K=32 must be >= 2x the sequential loop, "
        f"got {speedups[(32, FusionMode.SHARED)]:.2f}x"
    )

    # Register the gate workload with pytest-benchmark too, so the
    # documented `pytest benchmarks/ --benchmark-only` invocation
    # collects this test (fixture-less tests are skipped there) and
    # tracks the fused run's timing alongside the other benches.
    def run_fused_shared_32():
        return count_subgraphs_insertion_only_fused(
            insertion_stream(graph, rng=12),
            pattern,
            copies=32,
            trials=trials_per_copy,
            rng=13,
        )

    fused = benchmark.pedantic(run_fused_shared_32, rounds=1, iterations=1)
    assert fused.passes == 3


def test_throughput_columnar_pipeline(benchmark, capsys):
    """The columnar EdgeBatch pipeline vs the scalar tuple pipeline.

    The PR-3 acceptance gate: K=32 median-of-K insertion-only counting
    on a ~300k-element stream, serial backend, measured with the
    columnar pipeline on and off (``columnar=False`` is the scalar
    tuple dispatch the engine shipped through PR 2).  ``edges/s``
    counts ensemble-observed elements (K × 3m) per wall-clock second,
    so the ratio of the two rows of one mode IS the wall-clock
    speedup.  Mirror mode is the honest apples-to-apples comparison —
    both pipelines produce bit-identical estimates there (asserted
    below) — and must come out ≥ 3×; measured on the PR-2 tree itself
    the same workload ran ~2× slower than this file's scalar rows, so
    the recorded speedup understates the cross-PR gain.  Results land
    in ``benchmarks/results/throughput_columnar.json``.
    """
    graph = gen.barabasi_albert(60_000, 5, rng=11)
    copies, trials = 32, 100
    pattern = zoo.triangle()
    ensemble_elements = copies * 3 * graph.m

    table = Table(
        f"Columnar vs scalar pipeline (K={copies}, trials/copy={trials}, "
        f"m={graph.m})",
        ["mode", "pipeline", "seconds", "elements/s", "speedup", "estimate"],
    )
    rows = []
    seconds = {}
    estimates = {}
    for mode in (FusionMode.MIRROR, FusionMode.SHARED):
        for columnar in (False, True):
            stream = insertion_stream(graph, rng=12)
            start = time.perf_counter()
            fused = count_subgraphs_insertion_only_fused(
                stream,
                pattern,
                copies=copies,
                trials=trials,
                rng=13,
                mode=mode,
                columnar=columnar,
            )
            elapsed = time.perf_counter() - start
            assert fused.passes == 3
            seconds[(mode, columnar)] = elapsed
            estimates[(mode, columnar)] = fused.estimates
            pipeline = "columnar" if columnar else "scalar"
            speedup = seconds[(mode, False)] / elapsed
            table.add_row(
                mode, pipeline, elapsed, ensemble_elements / elapsed, speedup,
                fused.estimate,
            )
            rows.append(
                {
                    "mode": mode,
                    "pipeline": pipeline,
                    "seconds": elapsed,
                    "edges_per_sec": ensemble_elements / elapsed,
                    "speedup_vs_scalar": speedup,
                    "estimate": fused.estimate,
                }
            )

    # Mirror mode: the columnar pipeline must change nothing but the clock.
    assert estimates[(FusionMode.MIRROR, True)] == estimates[(FusionMode.MIRROR, False)]

    mirror_speedup = (
        seconds[(FusionMode.MIRROR, False)] / seconds[(FusionMode.MIRROR, True)]
    )
    shared_speedup = (
        seconds[(FusionMode.SHARED, False)] / seconds[(FusionMode.SHARED, True)]
    )
    emit_table(table, "throughput_columnar", capsys, json_twin=False)
    emit_json(
        "throughput_columnar",
        params={
            "n": graph.n,
            "m": graph.m,
            "copies": copies,
            "trials_per_copy": trials,
            "pattern": pattern.name,
            "backend": "serial",
            "ensemble_elements": ensemble_elements,
        },
        rows=rows,
        extra={
            "mirror_speedup": mirror_speedup,
            "shared_speedup": shared_speedup,
        },
    )
    assert mirror_speedup >= 3.0, (
        f"columnar pipeline at K=32 (mirror) must be >= 3x the scalar "
        f"pipeline, got {mirror_speedup:.2f}x"
    )

    def run_columnar_mirror():
        return count_subgraphs_insertion_only_fused(
            insertion_stream(graph, rng=12),
            pattern,
            copies=copies,
            trials=trials,
            rng=13,
            mode=FusionMode.MIRROR,
        )

    fused = benchmark.pedantic(run_columnar_mirror, rounds=1, iterations=1)
    assert fused.passes == 3


def test_throughput_serial_vs_parallel_backend(benchmark, capsys):
    """The thread and process backends vs serial at K=32 (mirror mode).

    One fused mirror-mode run per row, identical seeds throughout, so
    every row's estimate is the same number and the table isolates
    *execution* cost: the serial row is the in-process dispatch loop,
    the thread rows add queue hops (by-reference handoff, no copies),
    the process rows add the shared-memory ring transport — each batch
    packed once, every worker handed a slot reference — and divide the
    estimator work by the pool size.

    A parallel row only *measures parallelism* when the machine has a
    core for the driver plus one per worker; rows that oversubscribe
    (``cpus < workers + 1``) mostly measure protocol overhead and are
    flagged ``valid_parallelism: false`` in the archived JSON — and
    the >= 2x speedup gate is asserted only on machines with at least
    4 CPUs, where a 2-worker pool has honest cores to win on.
    ``elements/s`` counts ensemble-observed elements (K × 3m) per
    wall-clock second, as in the fused-vs-sequential table above.
    Results land in ``benchmarks/results/throughput_parallel.json``.
    """
    graph = gen.barabasi_albert(8000, 5, rng=11)
    trials_per_copy = 200
    copies = 32
    pattern = zoo.triangle()
    ensemble_elements = copies * 3 * graph.m
    cpus = os.cpu_count() or 1

    table = Table(
        f"Serial vs thread vs process backends, mirror mode (K={copies}, "
        f"trials/copy={trials_per_copy}, m={graph.m}, cpus={cpus})",
        ["backend", "workers", "seconds", "elements/s", "speedup vs serial",
         "valid", "estimate"],
    )

    def run_fused(backend, workers=None):
        stream = insertion_stream(graph, rng=12)
        start = time.perf_counter()
        result = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=trials_per_copy,
            rng=13,
            mode=FusionMode.MIRROR,
            backend=backend,
            workers=workers,
        )
        seconds = time.perf_counter() - start
        assert result.passes == 3
        return result, seconds

    serial, serial_seconds = run_fused("serial")
    table.add_row("serial", 1, serial_seconds,
                  ensemble_elements / serial_seconds, 1.0, True,
                  serial.estimate)
    rows = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": serial_seconds,
            "edges_per_sec": ensemble_elements / serial_seconds,
            "speedup_vs_serial": 1.0,
            "valid_parallelism": True,
            "estimate": serial.estimate,
        }
    ]
    speedups = {}
    for backend in ("thread", "process"):
        for workers in dict.fromkeys([1, 2, max(2, cpus)]):
            result, seconds = run_fused(backend, workers)
            # Mirror mode: sharding may not be *fast* on this machine,
            # but it must never change the answer.
            assert result.estimates == serial.estimates
            valid = cpus >= workers + 1
            speedup = serial_seconds / seconds
            speedups[(backend, workers)] = speedup
            table.add_row(backend, workers, seconds,
                          ensemble_elements / seconds, speedup, valid,
                          result.estimate)
            rows.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "seconds": seconds,
                    "edges_per_sec": ensemble_elements / seconds,
                    "speedup_vs_serial": speedup,
                    "valid_parallelism": valid,
                    "estimate": result.estimate,
                }
            )

    emit_table(table, "throughput_parallel", capsys, json_twin=False)
    emit_json(
        "throughput_parallel",
        params={
            "n": graph.n,
            "m": graph.m,
            "copies": copies,
            "trials_per_copy": trials_per_copy,
            "pattern": pattern.name,
            "mode": "mirror",
            "cpus": cpus,
            "ensemble_elements": ensemble_elements,
        },
        rows=rows,
        extra={
            "best_process_speedup": max(
                speedups[k] for k in speedups if k[0] == "process"
            ),
        },
    )

    # The ISSUE's >= 2x acceptance gate — only meaningful where the
    # pool has real cores to shard onto.
    if cpus >= 4:
        best = max(speedups[("process", w)] for w in (2, max(2, cpus)))
        assert best >= 2.0, (
            f"process backend must be >= 2x serial on a {cpus}-CPU box, "
            f"got {best:.2f}x"
        )

    fused = benchmark.pedantic(
        lambda: run_fused("process", min(2, cpus))[0], rounds=1, iterations=1
    )
    assert fused.estimates == serial.estimates
