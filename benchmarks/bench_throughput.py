"""Stream-throughput benches: the cost model behind repro band 4/5.

The calibration note for this reproduction ("easy to code but slow on
large edge streams") is about exactly these numbers: elements/second
through the pass loop.  Two regimes matter:

* the oracle pass loop with *many* concurrent f1/f3 queries — this is
  where the skip-ahead reservoir bank turns O(m·K) coin flips into
  O(m + K log m) heap wakes (see ``repro.sketch.reservoir``);
* the plain baselines (single reservoir, TRIEST) as a floor.
"""

from conftest import emit_table

from repro.experiments.tables import Table
from repro.graph import generators as gen
from repro.sketch.reservoir import SingleReservoir, SkipAheadReservoirBank
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream


def test_throughput_skip_ahead_bank(benchmark):
    # 2000 concurrent single-item reservoirs over a 20k stream.
    def run_bank():
        bank = SkipAheadReservoirBank(2000, rng=1)
        for item in range(20_000):
            bank.offer(item)
        return bank

    bank = benchmark(run_bank)
    assert bank.count == 20_000


def test_throughput_naive_reservoirs_for_scale(benchmark):
    # The O(m*K) naive grid at 1/20 of the bank's K, for comparison.
    def run_naive():
        reservoirs = [SingleReservoir(rng=i) for i in range(100)]
        for item in range(20_000):
            for reservoir in reservoirs:
                reservoir.offer(item)
        return reservoirs

    reservoirs = benchmark(run_naive)
    assert all(r.count == 20_000 for r in reservoirs)


def test_throughput_three_pass_large_stream(benchmark, capsys):
    graph = gen.barabasi_albert(4000, 5, rng=2)

    def run_counter():
        stream = insertion_stream(graph, rng=3)
        return count_subgraphs_insertion_only(
            stream, zoo.triangle(), trials=3000, rng=4
        )

    result = benchmark.pedantic(run_counter, rounds=1, iterations=1)
    assert result.passes == 3

    # A small scaling table: elements/second at three stream sizes.
    import time

    table = Table(
        "Throughput: 3-pass triangle counter (trials=2000)",
        ["n", "m", "stream elements x passes", "seconds", "elements/s"],
    )
    for n in (1000, 2000, 4000):
        g = gen.barabasi_albert(n, 5, rng=5)
        stream = insertion_stream(g, rng=6)
        start = time.perf_counter()
        count_subgraphs_insertion_only(stream, zoo.triangle(), trials=2000, rng=7)
        elapsed = time.perf_counter() - start
        processed = 3 * g.m
        table.add_row(n, g.m, processed, elapsed, processed / elapsed)
    emit_table(table, "throughput", capsys)
