"""E2 bench: 3-pass insertion-only counter + the Theorem 17 table."""

from conftest import emit_table

from repro.experiments import e02_three_pass
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streams.stream import insertion_stream


def test_e02_counter_throughput(benchmark, capsys):
    graph = gen.gnp(60, 0.25, rng=3)
    pattern = pattern_zoo.triangle()

    def run_counter():
        stream = insertion_stream(graph, rng=4)
        return count_subgraphs_insertion_only(stream, pattern, trials=1000, rng=5)

    result = benchmark(run_counter)
    assert result.passes == 3

    emit_table(e02_three_pass.run(fast=True), "e02_three_pass", capsys)
