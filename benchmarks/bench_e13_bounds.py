"""E13 bench: LP cover solve throughput + the bound-landscape table."""

from conftest import emit_table

from repro.experiments import e13_bounds
from repro.graph.graph import Graph
from repro.patterns.edge_cover import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
)
from repro.patterns import pattern as zoo


def test_e13_cover_lp_throughput(benchmark, capsys):
    pattern = zoo.wheel(6)

    def solve_covers():
        graph = Graph(pattern.graph.n, pattern.graph.edges())
        return (
            fractional_edge_cover_number(graph),
            fractional_vertex_cover_number(graph),
        )

    rho, tau = benchmark(solve_covers)
    assert rho > 0 and tau > 0

    emit_table(e13_bounds.run(fast=True), "e13_bounds", capsys)
