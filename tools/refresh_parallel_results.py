"""Install a multi-core ``throughput_parallel.json`` into results/.

The committed ``benchmarks/results/throughput_parallel.json`` is
whatever box last ran ``bench_throughput.py`` — often a 1-CPU build
sandbox whose parallel rows are flagged ``valid_parallelism: false``
(they measure protocol overhead, not scaling).  The CI
``parallel-smoke`` job regenerates the table on a real multi-core
runner and uploads it as the ``throughput-parallel`` artifact; this
tool is the missing last step — it **validates** a downloaded copy and
installs it as the committed result, refusing anything that would put
dishonest numbers in the repository:

* the document must pass the shared benchmark JSON schema;
* ``params.cpus`` must be >= 4 (the K=32 scaling gate is only armed
  there);
* at least one parallel row must carry ``valid_parallelism: true``;
* every row keeps the required columns (backend, workers, seconds,
  edges_per_sec, speedup_vs_serial, valid_parallelism).

Usage, from the repository root::

    # after `gh run download -n throughput-parallel` (or a browser
    # download of the artifact) produced ./throughput_parallel.json
    python tools/refresh_parallel_results.py throughput_parallel.json

    # dry-run: validate without installing
    python tools/refresh_parallel_results.py --check-only candidate.json
"""

import argparse
import json
import os
import shutil
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))

TARGET = os.path.join(_ROOT, "benchmarks", "results",
                      "throughput_parallel.json")
REQUIRED_COLUMNS = ("backend", "workers", "seconds", "edges_per_sec",
                    "speedup_vs_serial", "valid_parallelism")


def validate(path: str) -> dict:
    """Schema + honesty checks; returns the parsed document or raises."""
    from conftest import validate_benchmark_json

    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    validate_benchmark_json(document)
    params = document["params"]
    cpus = params.get("cpus")
    if not isinstance(cpus, int) or cpus < 4:
        raise ValueError(
            f"params.cpus is {cpus!r}; honest scaling rows need a >= 4 core "
            f"machine (the CI parallel-smoke runner qualifies) — this looks "
            f"like another constrained-sandbox run"
        )
    rows = document["rows"]
    for row in rows:
        missing = [key for key in REQUIRED_COLUMNS if key not in row]
        if missing:
            raise ValueError(f"row {row!r} is missing {missing}")
    parallel_rows = [row for row in rows if row["workers"] > 1]
    if not parallel_rows:
        raise ValueError("no multi-worker rows in the document")
    if not any(row["valid_parallelism"] for row in parallel_rows):
        raise ValueError(
            "every parallel row is flagged valid_parallelism: false — "
            "the run did not demonstrate real scaling; tune ring depth / "
            "batch_size and re-run the bench before installing"
        )
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate + install a multi-core "
                    "throughput_parallel.json (see module docstring)"
    )
    parser.add_argument("source", help="downloaded artifact JSON")
    parser.add_argument("--check-only", action="store_true",
                        help="validate without touching results/")
    args = parser.parse_args(argv)
    try:
        document = validate(args.source)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {args.source}: {error}", file=sys.stderr)
        return 1
    best = max(
        (row for row in document["rows"] if row["valid_parallelism"]
         and row["workers"] > 1),
        key=lambda row: row["speedup_vs_serial"],
    )
    print(f"{args.source}: ok — cpus={document['params']['cpus']}, "
          f"best honest speedup {best['speedup_vs_serial']:.2f}x "
          f"({best['backend']} x{best['workers']})")
    if args.check_only:
        return 0
    shutil.copyfile(args.source, TARGET)
    print(f"installed -> {os.path.relpath(TARGET, _ROOT)}")
    print("commit it to retire the ROADMAP multi-core item")
    return 0


if __name__ == "__main__":
    sys.exit(main())
