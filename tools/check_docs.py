#!/usr/bin/env python3
"""Docs smoke check: README/ARCHITECTURE must reference only real things.

A grep-based guard (no imports of the package) that keeps the docs
honest as the CLI and module tree evolve:

* every ``python -m repro <subcommand>`` in a fenced code block names a
  real subcommand, and every ``--flag`` on such a line appears in
  ``src/repro/cli.py`` (or ``src/repro/experiments/runner.py`` for
  ``python -m repro.experiments`` lines);
* every dotted ``repro.foo.bar`` reference resolves to a module file
  under ``src/`` (trailing attribute names are tolerated);
* every referenced repo-relative path (``docs/...``, ``examples/...``,
  ``benchmarks/...``, ``tests/...``, ``src/...``) exists.

Run: ``python tools/check_docs.py`` (exit code 0 = docs are clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "docs" / "ARCHITECTURE.md"]

#: Flags that belong to tools other than the repro CLI (pytest etc.).
FOREIGN_FLAGS = {"--benchmark-only", "--help"}


def fenced_code_lines(text: str):
    """Lines inside ``` fenced blocks."""
    inside = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            inside = not inside
            continue
        if inside:
            yield line.strip()


def module_exists(dotted: str) -> bool:
    """Whether ``repro.a.b[.attr...]`` resolves under src/.

    Trailing attribute names are tolerated (``repro.engine.core.StreamEngine``
    is fine), but the reference must resolve at least one component past
    the ``repro`` root — otherwise ``repro.anything.at.all`` would pass.
    """
    parts = dotted.split(".")
    while len(parts) >= 2:
        candidate = ROOT / "src" / Path(*parts)
        if candidate.with_suffix(".py").exists() or (candidate / "__init__.py").exists():
            return True
        parts = parts[:-1]
    return False


def check_document(path: Path, cli_source: str, runner_source: str):
    errors = []
    text = path.read_text(encoding="utf-8")
    subcommands = set(
        re.findall(r'commands\.add_parser\(\s*"([a-z]+)"', cli_source)
    )

    for line in fenced_code_lines(text):
        if not line.startswith("python -m repro"):
            continue
        is_runner = line.startswith("python -m repro.experiments")
        source = runner_source if is_runner else cli_source
        if not is_runner:
            tokens = line.split()
            if len(tokens) >= 4 and not tokens[3].startswith("-"):
                subcommand = tokens[3]
                if subcommand not in subcommands:
                    errors.append(
                        f"{path.name}: unknown subcommand {subcommand!r} in: {line}"
                    )
        for flag in re.findall(r"(?<!-)(--[a-z][a-z-]*)", line):
            if flag in FOREIGN_FLAGS:
                continue
            if f'"{flag}"' not in source:
                errors.append(f"{path.name}: unknown flag {flag} in: {line}")

    for dotted in set(re.findall(r"\brepro(?:\.[A-Za-z_][A-Za-z_0-9]*)+", text)):
        if not module_exists(dotted):
            errors.append(f"{path.name}: dangling module reference {dotted}")

    for relative in set(
        re.findall(r"\b(?:docs|examples|benchmarks|tests|src)/[\w./-]+\b", text)
    ):
        target = relative.rstrip(".")
        if target.endswith(("_", "-")):
            continue  # a glob like bench_*.py, truncated at the star
        if not (ROOT / target).exists():
            errors.append(f"{path.name}: dangling path reference {target}")
    return errors


def main() -> int:
    cli_source = (ROOT / "src" / "repro" / "cli.py").read_text(encoding="utf-8")
    runner_source = (ROOT / "src" / "repro" / "experiments" / "runner.py").read_text(
        encoding="utf-8"
    )
    errors = []
    for path in DOCS:
        if not path.exists():
            errors.append(f"missing document: {path.relative_to(ROOT)}")
            continue
        errors.extend(check_document(path, cli_source, runner_source))
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        print(f"check_docs: {', '.join(d.name for d in DOCS)} are clean")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
